//! Classical parameter optimization for the QAOA hybrid loop.
//!
//! The paper runs SciPy's L-BFGS-B (§V-G); this crate substitutes a
//! derivative-free Nelder–Mead simplex (gradients of sampled quantum
//! expectations are noisy anyway) seeded by an analytic/simulated grid
//! search. Only the *parameter values* matter downstream — every
//! compilation strategy is evaluated with the same optimized circuit.

use qcircuit::ParamValues;
use qsim::StateVector;

use crate::analytic;
use crate::ansatz::{qaoa_circuit_parametric, QaoaParams};
use crate::MaxCut;

/// Configuration for [`nelder_mead`].
#[derive(Debug, Clone)]
pub struct NelderMeadOptions {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Convergence threshold on the simplex's objective spread
    /// (the paper's runs converge at `1e-6`).
    pub tolerance: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 2000,
            tolerance: 1e-6,
            initial_step: 0.1,
        }
    }
}

/// Maximizes `f` over `R^n` with the Nelder–Mead simplex, starting at
/// `x0`. Returns `(argmax, max)`.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn nelder_mead<F>(mut f: F, x0: &[f64], options: &NelderMeadOptions) -> (Vec<f64>, f64)
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(!x0.is_empty(), "cannot optimize over zero dimensions");
    let n = x0.len();
    let (alpha, gamma_e, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    // Maximization via minimizing -f.
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        -f(x)
    };

    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), v0));
    for i in 0..n {
        let mut x = x0.to_vec();
        x[i] += options.initial_step;
        let v = eval(&x, &mut evals);
        simplex.push((x, v));
    }

    while evals < options.max_evals {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let spread = simplex[n].1 - simplex[0].1;
        // Converge only when both the objective spread and the simplex
        // diameter are small: a symmetric simplex straddling the optimum
        // can have zero spread while still being far from converged.
        let diameter = simplex[1..]
            .iter()
            .flat_map(|(x, _)| x.iter().zip(&simplex[0].0).map(|(a, b)| (a - b).abs()))
            .fold(0.0f64, f64::max);
        if spread.abs() < options.tolerance && diameter < options.tolerance.sqrt() {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = eval(&reflect, &mut evals);
        if fr < simplex[0].1 {
            // Expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&reflect)
                .map(|(c, r)| c + gamma_e * (r - c))
                .collect();
            let fe = eval(&expand, &mut evals);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contraction.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = eval(&contract, &mut evals);
            if fc < worst.1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink toward the best vertex.
                let best = simplex[0].0.clone();
                for vertex in simplex.iter_mut().skip(1) {
                    let x: Vec<f64> = best
                        .iter()
                        .zip(&vertex.0)
                        .map(|(b, v)| b + sigma * (v - b))
                        .collect();
                    let fv = eval(&x, &mut evals);
                    *vertex = (x, fv);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (x, v) = simplex.swap_remove(0);
    (x, -v)
}

/// Optimizes QAOA parameters for `problem` at level `p`:
/// an analytic (p=1) grid search seeds the simplex, then Nelder–Mead
/// refines over the full simulated expectation. Returns the parameters and
/// the achieved expectation.
///
/// For `p > 1` the grid-searched p=1 point is tiled across levels as the
/// starting guess.
///
/// The hybrid loop is compile-once/rebind-many: the parametric ansatz is
/// built **once** before the simplex starts, and every objective
/// evaluation only binds fresh `(γ, β)` values into it
/// ([`StateVector::bind_and_simulate`]) — no per-iteration circuit
/// construction.
///
/// # Panics
///
/// Panics if `p == 0` or the problem exceeds the simulator's limits.
pub fn grid_then_nelder_mead(
    problem: &MaxCut,
    p: usize,
    grid_resolution: usize,
) -> (QaoaParams, f64) {
    assert!(p >= 1, "p must be at least 1");
    let ((g0, b0), _) = analytic::grid_search_p1(problem, grid_resolution);
    let x0: Vec<f64> = (0..p).flat_map(|_| [g0, b0]).collect();
    let ansatz = qaoa_circuit_parametric(problem, p, false);
    let (x, value) = nelder_mead(
        |flat| {
            let state = StateVector::bind_and_simulate(&ansatz, &ParamValues::from(flat))
                .expect("simplex points always cover the 2p ansatz parameters");
            state.expectation_diagonal(|bits| problem.cut_value(bits) as f64)
        },
        &x0,
        &NelderMeadOptions::default(),
    );
    (QaoaParams::from_flat(&x), value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nelder_mead_finds_quadratic_maximum() {
        let f = |x: &[f64]| -((x[0] - 2.0).powi(2) + (x[1] + 1.0).powi(2));
        let (x, v) = nelder_mead(f, &[0.0, 0.0], &NelderMeadOptions::default());
        assert!((x[0] - 2.0).abs() < 1e-3, "x0 = {}", x[0]);
        assert!((x[1] + 1.0).abs() < 1e-3, "x1 = {}", x[1]);
        assert!(v > -1e-5);
    }

    #[test]
    fn nelder_mead_handles_one_dimension() {
        let f = |x: &[f64]| -(x[0] - 0.5).powi(2);
        let (x, _) = nelder_mead(f, &[3.0], &NelderMeadOptions::default());
        assert!((x[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn nelder_mead_respects_eval_budget() {
        let mut count = 0usize;
        let f = |x: &[f64]| {
            // interior mutability via closure capture not possible with FnMut? it is
            x[0].sin()
        };
        let opts = NelderMeadOptions {
            max_evals: 25,
            ..Default::default()
        };
        // count via wrapper
        let counted = |x: &[f64]| {
            count += 1;
            f(x)
        };
        let _ = nelder_mead(counted, &[0.1, 0.2, 0.3], &opts);
        assert!(count <= 30, "evaluated {count} times"); // small slack for shrink step
    }

    #[test]
    fn p1_single_edge_reaches_optimum() {
        let problem = MaxCut::new(generators::path(2));
        let (_, value) = grid_then_nelder_mead(&problem, 1, 16);
        assert!((value - 1.0).abs() < 1e-4, "value {value}");
    }

    #[test]
    fn p2_improves_on_p1() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::connected_random_regular(8, 3, 100, &mut rng).unwrap();
        let problem = MaxCut::new(g);
        let (_, v1) = grid_then_nelder_mead(&problem, 1, 24);
        let (_, v2) = grid_then_nelder_mead(&problem, 2, 24);
        assert!(
            v2 >= v1 - 1e-6,
            "p=2 expectation {v2} must not be below p=1 {v1}"
        );
    }

    #[test]
    fn optimized_ratio_beats_known_p1_bound() {
        // 3-regular graphs have a p=1 worst-case ratio of 0.6924.
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..3 {
            let g = generators::connected_random_regular(10, 3, 100, &mut rng).unwrap();
            let problem = MaxCut::new(g);
            let (_, value) = grid_then_nelder_mead(&problem, 1, 24);
            let ratio = value / problem.max_value();
            assert!(ratio > 0.69, "ratio {ratio}");
        }
    }
}
