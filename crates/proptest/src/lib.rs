//! Vendored, dependency-free subset of the `proptest` 1.x API.
//!
//! The build environment is fully offline, so the crates-io `proptest`
//! cannot be fetched. This shim implements the surface the workspace's
//! property tests use: the [`proptest!`] macro, the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, range/tuple/`Just` strategies,
//! [`collection::vec`], [`sample::subsequence`], [`option::of`],
//! [`prop_oneof!`], and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (failures report the original
//! case), no persisted failure seeds (streams are deterministic per test
//! name), and a default of 64 cases per test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

/// Test-runner types used by the generated test bodies.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Why a generated test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case violated a `prop_assume!` and is skipped.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test generator (FNV-1a of the test name).
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

use test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A size specification for collection strategies (`0..n` or `0..=n`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies over existing collections.
pub mod sample {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing an order-preserving random subsequence of
    /// `values` whose length falls in `size`.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }

    /// See [`subsequence`].
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.sample(rng).min(self.values.len());
            // Floyd-style distinct index sampling, then order-preserving
            // selection.
            let mut picked = vec![false; self.values.len()];
            let mut chosen = 0usize;
            while chosen < want {
                let i = rng.gen_range(0..self.values.len());
                if !picked[i] {
                    picked[i] = true;
                    chosen += 1;
                }
            }
            self.values
                .iter()
                .zip(&picked)
                .filter(|(_, &p)| p)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `None` about a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Uniformly picks one of several boxed strategies (built by
/// [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}

/// Uniformly picks one of the listed strategies each case. All arms must
/// generate the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                left, right, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`: {} at {}:{}",
                left, right, format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $crate::Strategy::boxed($strat);)+
            #[allow(unused_parens)]
            let __strategies = ($(&$arg),+);
            for __case in 0..__config.cases {
                #[allow(unused_parens)]
                let ($($arg),+) = {
                    #[allow(unused_parens)]
                    let ($($arg),+) = &__strategies;
                    ($($crate::Strategy::generate(*$arg, &mut __rng)),+)
                };
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match __outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' case {}: {}", stringify!($name), __case, msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens(max: usize) -> impl Strategy<Value = usize> {
        (0..max / 2).prop_map(|x| 2 * x)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn maps_apply(x in evens(100)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn flat_maps_nest(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k={} n={}", k, n);
        }

        #[test]
        fn oneof_unions(v in prop_oneof![Just(1usize), Just(2), 10usize..12]) {
            prop_assert!(v == 1 || v == 2 || v == 10 || v == 11);
        }

        #[test]
        fn vec_and_subsequence_sizes(
            xs in crate::collection::vec(0usize..5, 0..8),
            sub in crate::sample::subsequence((0..10usize).collect::<Vec<_>>(), 0..=10),
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert!(sub.len() <= 10);
            // order-preserving
            for w in sub.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }

        #[test]
        fn option_of_mixes(o in crate::option::of(1usize..4)) {
            if let Some(v) = o {
                prop_assert!((1..4).contains(&v));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(_x in 0usize..5) {
            // Runs without panicking; case count is observed via coverage
            // of the loop (nothing to assert beyond termination).
        }
    }

    #[test]
    fn deterministic_rng_per_test_name() {
        use rand::RngCore;
        let mut a = crate::test_runner::rng_for("mod::a");
        let mut b = crate::test_runner::rng_for("mod::a");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::rng_for("mod::c");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
