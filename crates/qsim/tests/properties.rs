//! Property-based tests for the statevector simulator.

use proptest::prelude::*;
use qcircuit::{Circuit, Gate, Instruction};
use qsim::{counts_to_distribution, Sampler, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_unitary_instruction(n: usize) -> impl Strategy<Value = Instruction> {
    let angle = -6.0f64..6.0;
    prop_oneof![
        (0..n).prop_map(|q| Instruction::one(Gate::H, q)),
        (0..n, angle.clone()).prop_map(|(q, t)| Instruction::one(Gate::Rx(t.into()), q)),
        (0..n, angle.clone()).prop_map(|(q, t)| Instruction::one(Gate::Ry(t.into()), q)),
        (0..n, angle.clone()).prop_map(|(q, t)| Instruction::one(Gate::Rz(t.into()), q)),
        (0..n, 1..n).prop_map(move |(a, d)| Instruction::two(Gate::Cnot, a, (a + d) % n)),
        (0..n, 1..n, angle.clone()).prop_map(move |(a, d, t)| Instruction::two(
            Gate::Rzz(t.into()),
            a,
            (a + d) % n
        )),
        (0..n, 1..n, angle).prop_map(move |(a, d, t)| Instruction::two(
            Gate::CPhase(t.into()),
            a,
            (a + d) % n
        )),
        (0..n, 1..n).prop_map(move |(a, d)| Instruction::two(Gate::Swap, a, (a + d) % n)),
    ]
}

fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_unitary_instruction(n), 0..max_len).prop_map(move |instrs| {
        let mut c = Circuit::new(n);
        for i in instrs {
            c.push(i).expect("in range");
        }
        c
    })
}

proptest! {
    #[test]
    fn unitary_circuits_preserve_norm(c in arb_circuit(5, 60)) {
        let sv = StateVector::from_circuit(&c);
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn apply_then_inverse_is_identity(c in arb_circuit(4, 30)) {
        let mut sv = StateVector::from_circuit(&c);
        // Apply inverse gates in reverse order.
        sv.apply_circuit(&c.reversed());
        let initial = StateVector::new(4);
        prop_assert!(sv.fidelity(&initial) > 1.0 - 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one(c in arb_circuit(5, 40)) {
        let p = StateVector::from_circuit(&c).probabilities();
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
    }

    #[test]
    fn diagonal_gates_leave_probabilities_unchanged(
        c in arb_circuit(4, 25),
        theta in -3.0f64..3.0,
        q in 0usize..4,
    ) {
        let base = StateVector::from_circuit(&c);
        let mut phased = base.clone();
        phased.apply(&Instruction::one(Gate::Rz(theta.into()), q));
        phased.apply(&Instruction::two(Gate::Rzz(theta.into()), q, (q + 1) % 4));
        let pa = base.probabilities();
        let pb = phased.probabilities();
        for (a, b) in pa.iter().zip(&pb) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn fidelity_is_symmetric_and_bounded(
        c1 in arb_circuit(3, 20),
        c2 in arb_circuit(3, 20),
    ) {
        let a = StateVector::from_circuit(&c1);
        let b = StateVector::from_circuit(&c2);
        let fab = a.fidelity(&b);
        let fba = b.fidelity(&a);
        prop_assert!((fab - fba).abs() < 1e-9);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&fab));
        prop_assert!(a.fidelity(&a) > 1.0 - 1e-9);
    }

    #[test]
    fn expectation_of_constant_is_constant(c in arb_circuit(4, 25), k in -5.0f64..5.0) {
        let sv = StateVector::from_circuit(&c);
        let e = sv.expectation_diagonal(|_| k);
        prop_assert!((e - k).abs() < 1e-9);
    }

    #[test]
    fn sampling_distribution_converges(c in arb_circuit(3, 15), seed in 0u64..500) {
        let sv = StateVector::from_circuit(&c);
        let probs = sv.probabilities();
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = Sampler::new(&sv).sample_counts(20_000, &mut rng);
        let dist = counts_to_distribution(&counts, 3);
        for (got, want) in dist.iter().zip(&probs) {
            prop_assert!((got - want).abs() < 0.03, "sampled {got} vs exact {want}");
        }
    }

    #[test]
    fn swap_relabels_probabilities(c in arb_circuit(3, 20), a in 0usize..3, d in 1usize..3) {
        let b = (a + d) % 3;
        let base = StateVector::from_circuit(&c);
        let mut swapped = base.clone();
        swapped.apply(&Instruction::two(Gate::Swap, a, b));
        let pa = base.probabilities();
        let pb = swapped.probabilities();
        for (idx, &p_orig) in pa.iter().enumerate() {
            let bit_a = (idx >> a) & 1;
            let bit_b = (idx >> b) & 1;
            let swapped_idx = (idx & !(1 << a) & !(1 << b)) | (bit_a << b) | (bit_b << a);
            prop_assert!((p_orig - pb[swapped_idx]).abs() < 1e-9);
        }
    }
}
