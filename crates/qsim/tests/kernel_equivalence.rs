//! Property-based equivalence tests for the kernel engine: every engine
//! configuration (fused/unfused diagonals, any thread count) must produce
//! the same state as the serial gate-by-gate reference, within
//! 1e-12 per amplitude.

use proptest::prelude::*;
use qcircuit::{Circuit, Gate, Instruction};
use qsim::{SimError, SimOptions, StateVector, MAX_QUBITS};

/// A gate mix covering every kernel class: diagonal 1q/2q (fusable),
/// flips, permutations, structured mixers, and generic dense unitaries.
fn arb_unitary_instruction(n: usize) -> impl Strategy<Value = Instruction> {
    let angle = -6.0f64..6.0;
    prop_oneof![
        (0..n).prop_map(|q| Instruction::one(Gate::H, q)),
        (0..n).prop_map(|q| Instruction::one(Gate::X, q)),
        (0..n).prop_map(|q| Instruction::one(Gate::Y, q)),
        (0..n).prop_map(|q| Instruction::one(Gate::Z, q)),
        (0..n).prop_map(|q| Instruction::one(Gate::T, q)),
        (0..n, angle.clone()).prop_map(|(q, t)| Instruction::one(Gate::Rx(t.into()), q)),
        (0..n, angle.clone()).prop_map(|(q, t)| Instruction::one(Gate::Ry(t.into()), q)),
        (0..n, angle.clone()).prop_map(|(q, t)| Instruction::one(Gate::Rz(t.into()), q)),
        (0..n, angle.clone()).prop_map(|(q, t)| Instruction::one(Gate::U1(t.into()), q)),
        (0..n, angle.clone(), angle.clone(), angle.clone())
            .prop_map(|(q, t, p, l)| Instruction::one(Gate::U3(t.into(), p.into(), l.into()), q)),
        (0..n, 1..n).prop_map(move |(a, d)| Instruction::two(Gate::Cnot, a, (a + d) % n)),
        (0..n, 1..n).prop_map(move |(a, d)| Instruction::two(Gate::Cz, a, (a + d) % n)),
        (0..n, 1..n, angle.clone()).prop_map(move |(a, d, t)| Instruction::two(
            Gate::Rzz(t.into()),
            a,
            (a + d) % n
        )),
        (0..n, 1..n, angle).prop_map(move |(a, d, t)| Instruction::two(
            Gate::CPhase(t.into()),
            a,
            (a + d) % n
        )),
        (0..n, 1..n).prop_map(move |(a, d)| Instruction::two(Gate::Swap, a, (a + d) % n)),
    ]
}

fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_unitary_instruction(n), 0..max_len).prop_map(move |instrs| {
        let mut c = Circuit::new(n);
        for i in instrs {
            c.push(i).expect("in range");
        }
        c
    })
}

/// A QAOA-shaped circuit: H wall, diagonal cost layers, RX mixers — the
/// workload the diagonal-fusion path is built for.
fn arb_qaoa_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    (
        proptest::collection::vec((0..n, 1..n), 1..3 * n),
        -3.0f64..3.0,
        -3.0f64..3.0,
    )
        .prop_map(move |(edges, gamma, beta)| {
            let mut c = Circuit::new(n);
            for q in 0..n {
                c.h(q);
            }
            for (a, d) in edges {
                c.rzz(gamma, a, (a + d) % n);
            }
            for q in 0..n {
                c.rx(2.0 * beta, q);
            }
            c
        })
}

fn max_amp_diff(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    /// Fused diagonal application agrees with gate-by-gate application.
    #[test]
    fn fused_diagonals_match_unfused(c in arb_circuit(6, 60)) {
        let fused = StateVector::from_circuit_with(
            &c,
            &SimOptions::serial().with_fused_diagonals(true),
        );
        let unfused = StateVector::from_circuit_with(
            &c,
            &SimOptions::serial().with_fused_diagonals(false),
        );
        prop_assert!(max_amp_diff(&fused, &unfused) < 1e-12);
    }

    /// The QAOA fast path (single parity-class cost layer) agrees with
    /// the generic engine.
    #[test]
    fn qaoa_cost_layer_fusion_matches(c in arb_qaoa_circuit(6)) {
        let fused = StateVector::from_circuit_with(
            &c,
            &SimOptions::serial().with_fused_diagonals(true),
        );
        let unfused = StateVector::from_circuit_with(
            &c,
            &SimOptions::serial().with_fused_diagonals(false),
        );
        prop_assert!(max_amp_diff(&fused, &unfused) < 1e-12);
    }

}

// Thread-equivalence cases spawn thousands of scoped threads each (every
// gate pass forks); fewer, fatter cases keep the suite quick without
// losing coverage.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N oversubscribed threads produce the same state as serial — the
    /// chunking rules never split a gate's coupled amplitudes.
    #[test]
    fn thread_counts_match_serial(c in arb_circuit(6, 50), threads in 2usize..9) {
        let serial = StateVector::from_circuit_with(&c, &SimOptions::serial());
        let parallel = StateVector::from_circuit_with(
            &c,
            &SimOptions::default()
                .with_threads(threads)
                .with_crossover_qubits(0),
        );
        prop_assert!(
            max_amp_diff(&serial, &parallel) < 1e-12,
            "threads={threads}"
        );
        // Stronger than the contract: chunking must not reassociate any
        // floating-point operation, so the match is exact.
        prop_assert_eq!(serial.amplitudes(), parallel.amplitudes());
    }

    /// Threading and fusion composed still match the serial reference.
    #[test]
    fn threaded_fused_matches_serial_unfused(c in arb_qaoa_circuit(5), threads in 2usize..5) {
        let reference = StateVector::from_circuit_with(
            &c,
            &SimOptions::serial().with_fused_diagonals(false),
        );
        let tuned = StateVector::from_circuit_with(
            &c,
            &SimOptions::default()
                .with_threads(threads)
                .with_crossover_qubits(0)
                .with_fused_diagonals(true),
        );
        prop_assert!(max_amp_diff(&reference, &tuned) < 1e-12);
    }
}

#[test]
fn try_new_reports_structured_error() {
    match StateVector::try_new(MAX_QUBITS + 3) {
        Err(SimError::RegisterTooLarge {
            qubits,
            limit,
            representation,
        }) => {
            assert_eq!(qubits, MAX_QUBITS + 3);
            assert_eq!(limit, MAX_QUBITS);
            assert_eq!(representation, "statevector");
        }
        other => panic!("expected RegisterTooLarge, got {other:?}"),
    }
    // In-range widths succeed (kept small — the limit itself would
    // allocate the full 4 GiB vector).
    assert!(StateVector::try_new(10).is_ok());
}
