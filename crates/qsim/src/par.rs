//! Chunked fork-join over amplitude buffers via `std::thread::scope` —
//! the same no-dependency pattern as `qcompile::batch`, shaped for dense
//! array passes instead of job queues.
//!
//! Determinism contract: every closure passed here must compute each
//! element's new value only from (a) the element's *global* index and (b)
//! pre-update values living in the same chunk. Under that contract the
//! split into chunks cannot reassociate a single floating-point operation,
//! so N-thread results are **bit-for-bit identical** to serial — the
//! `kernel_equivalence` property tests pin this (to 1e-12, though equality
//! is exact).

use std::thread;

/// Runs `f(global_offset, chunk)` over contiguous chunks of `data`, one
/// scoped thread per chunk. Chunk sizes are multiples of `align` (a power
/// of two dividing `data.len()`), so a kernel whose update rule couples
/// indices only within aligned `align`-blocks never sees a partner split
/// across threads.
///
/// Degenerate cases (`threads <= 1`, or too little data to split) run `f`
/// inline on the whole slice.
pub(crate) fn chunked<T, F>(data: &mut [T], align: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert!(align.is_power_of_two());
    debug_assert_eq!(data.len() % align.min(data.len().max(1)), 0);
    let len = data.len();
    if threads <= 1 || len <= align {
        serial_dispatch();
        f(0, data);
        return;
    }
    let chunk = len.div_ceil(threads).next_multiple_of(align);
    if chunk >= len {
        serial_dispatch();
        f(0, data);
        return;
    }
    parallel_dispatch(len.div_ceil(chunk));
    thread::scope(|scope| {
        for (i, sub) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || f(i * chunk, sub));
        }
    });
}

/// Telemetry for a pass that ran inline (thread-utilization view of the
/// manifest: parallel vs serial dispatch counts plus peak fan-out).
fn serial_dispatch() {
    if qtrace::enabled() {
        qtrace::global().add("qsim/par/serial_dispatches", 1);
    }
}

/// Telemetry for a pass split across `chunks` scoped threads.
fn parallel_dispatch(chunks: usize) {
    if qtrace::enabled() {
        let q = qtrace::global();
        q.add("qsim/par/parallel_dispatches", 1);
        q.gauge_max("qsim/par/peak_threads", chunks as u64);
    }
}

/// Lockstep variant for a pair of equal-length halves (the two sides of a
/// `split_at_mut` on a qubit's bit): runs `f(offset_in_half, lo_chunk,
/// hi_chunk)` over matching chunks. Used when a single-qubit gate acts on
/// the register's top bit, where [`chunked`] would degenerate to one
/// chunk.
pub(crate) fn zipped<T, F>(lo: &mut [T], hi: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T], &mut [T]) + Sync,
{
    debug_assert_eq!(lo.len(), hi.len());
    let len = lo.len();
    if threads <= 1 || len < 2 {
        serial_dispatch();
        f(0, lo, hi);
        return;
    }
    let chunk = len.div_ceil(threads);
    parallel_dispatch(len.div_ceil(chunk));
    thread::scope(|scope| {
        for (i, (ls, hs)) in lo.chunks_mut(chunk).zip(hi.chunks_mut(chunk)).enumerate() {
            let f = &f;
            scope.spawn(move || f(i * chunk, ls, hs));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_covers_every_index_once() {
        let mut data = vec![0u32; 1 << 10];
        chunked(&mut data, 8, 4, |offset, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x += (offset + i) as u32 + 1;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as u32 + 1, "index {i}");
        }
    }

    #[test]
    fn chunked_respects_alignment() {
        let mut data = vec![0usize; 1 << 8];
        let align = 32;
        chunked(&mut data, align, 3, |offset, chunk| {
            assert_eq!(offset % align, 0);
            assert_eq!(chunk.len() % align, 0);
        });
    }

    #[test]
    fn chunked_serial_fallbacks() {
        let mut data = vec![1u8; 16];
        chunked(&mut data, 16, 8, |offset, chunk| {
            assert_eq!(offset, 0);
            assert_eq!(chunk.len(), 16);
        });
        let mut empty: Vec<u8> = Vec::new();
        chunked(&mut empty, 1, 4, |_, chunk| assert!(chunk.is_empty()));
    }

    #[test]
    fn zipped_pairs_match_offsets() {
        let mut lo = vec![0usize; 100];
        let mut hi = vec![0usize; 100];
        zipped(&mut lo, &mut hi, 7, |offset, ls, hs| {
            for (i, (l, h)) in ls.iter_mut().zip(hs.iter_mut()).enumerate() {
                *l = offset + i;
                *h = offset + i + 1000;
            }
        });
        for i in 0..100 {
            assert_eq!(lo[i], i);
            assert_eq!(hi[i], i + 1000);
        }
    }
}
