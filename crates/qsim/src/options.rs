//! Engine configuration for the dense simulators.

use std::fmt;
use std::thread;

/// Tuning knobs for the statevector/density kernel engine.
///
/// The defaults are safe everywhere: results are **identical for every
/// `threads` value** (each amplitude's update depends only on its own
/// basis index and the pre-update values of its gate-local partners, so
/// scheduling cannot reassociate any floating-point operation), and fused
/// diagonal application agrees with gate-by-gate application to ~1e-15
/// per amplitude (pinned to 1e-12 by the `kernel_equivalence` property
/// tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Worker threads for amplitude streaming. `0` means auto (available
    /// parallelism). Values are clamped so small registers never pay
    /// fork-join overhead — see [`SimOptions::crossover_qubits`].
    pub threads: usize,
    /// Registers below this width always run serially: spawning a scoped
    /// thread costs tens of microseconds, which a full pass over fewer
    /// than ~2¹⁶ amplitudes cannot amortize.
    pub crossover_qubits: usize,
    /// Fuse runs of consecutive diagonal gates (RZ, U1, Z, S, T, CZ,
    /// CPHASE, RZZ) into a single amplitude pass. QAOA cost layers are
    /// entirely diagonal, so this collapses `m` per-gate passes into one
    /// parity-counting pass — the headline statevector win.
    pub fused_diagonals: bool,
}

impl SimOptions {
    /// Fully serial, fusion on — the configuration equivalence tests
    /// compare everything against.
    pub fn serial() -> Self {
        SimOptions {
            threads: 1,
            ..SimOptions::default()
        }
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the serial/parallel crossover register width.
    pub fn with_crossover_qubits(mut self, qubits: usize) -> Self {
        self.crossover_qubits = qubits;
        self
    }

    /// Enables or disables diagonal-gate fusion.
    pub fn with_fused_diagonals(mut self, fused: bool) -> Self {
        self.fused_diagonals = fused;
        self
    }

    /// The thread count to use for a register of `num_qubits`, after
    /// resolving `0 = auto` and applying the serial crossover.
    pub fn effective_threads(&self, num_qubits: usize) -> usize {
        if num_qubits < self.crossover_qubits {
            return 1;
        }
        match self.threads {
            0 => default_threads(),
            t => t,
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            threads: 0,
            crossover_qubits: 16,
            fused_diagonals: true,
        }
    }
}

impl fmt::Display for SimOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.threads {
            0 => write!(f, "threads=auto({})", default_threads())?,
            t => write!(f, "threads={t}")?,
        }
        write!(
            f,
            " crossover={}q fused_diagonals={}",
            self.crossover_qubits,
            if self.fused_diagonals { "on" } else { "off" }
        )
    }
}

/// Available parallelism, falling back to 1 when it cannot be queried
/// (same convention as `qcompile::batch::default_workers`). Cached after
/// the first query so per-gate hot paths never repeat the OS call.
pub fn default_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_forces_serial() {
        let opts = SimOptions::default().with_threads(8);
        assert_eq!(opts.effective_threads(10), 1);
        assert_eq!(opts.effective_threads(16), 8);
    }

    #[test]
    fn zero_threads_is_auto() {
        let opts = SimOptions::default().with_crossover_qubits(0);
        assert_eq!(opts.effective_threads(1), default_threads());
    }

    #[test]
    fn display_is_informative() {
        let s = SimOptions::serial().to_string();
        assert!(s.contains("threads=1"), "{s}");
        assert!(s.contains("fused_diagonals=on"), "{s}");
    }
}
