//! Structured simulator errors, mirroring the `qcompile` no-panic policy:
//! every user-triggerable failure of a `try_*` constructor surfaces as a
//! [`SimError`] instead of a panic.

use std::fmt;

/// A failure constructing or driving a simulator backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The requested register does not fit the dense representation.
    RegisterTooLarge {
        /// Requested register width.
        qubits: usize,
        /// Hard cap of the representation.
        limit: usize,
        /// Which dense representation was requested
        /// (`"statevector"` or `"density matrix"`).
        representation: &'static str,
    },
    /// The circuit still carries symbolic (unbound) parameters; the
    /// simulator only executes concrete amplitudes. Bind first, or use
    /// [`crate::StateVector::bind_and_simulate`].
    UnboundCircuit {
        /// Mnemonic of the first parametric gate encountered.
        gate: &'static str,
    },
    /// Parameter binding failed before simulation: the supplied values do
    /// not cover the circuit's parameters.
    ParamMismatch {
        /// Parameters the circuit requires (declared count, or the
        /// 1-based index of the first uncovered parameter).
        expected: usize,
        /// Values supplied.
        found: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RegisterTooLarge {
                qubits,
                limit,
                representation,
            } => write!(
                f,
                "{representation} over {qubits} qubits exceeds the {limit}-qubit dense limit"
            ),
            SimError::UnboundCircuit { gate } => write!(
                f,
                "circuit is parametric (first symbolic gate: {gate}); bind parameter values before simulating"
            ),
            SimError::ParamMismatch { expected, found } => write!(
                f,
                "parameter values do not cover the circuit: need {expected}, got {found}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_representation() {
        let e = SimError::RegisterTooLarge {
            qubits: 30,
            limit: 28,
            representation: "statevector",
        };
        let msg = e.to_string();
        assert!(msg.contains("statevector"));
        assert!(msg.contains("30"));
        assert!(msg.contains("28"));
    }
}
