//! Structured simulator errors, mirroring the `qcompile` no-panic policy:
//! every user-triggerable failure of a `try_*` constructor surfaces as a
//! [`SimError`] instead of a panic.

use std::fmt;

/// A failure constructing or driving a simulator backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The requested register does not fit the dense representation.
    RegisterTooLarge {
        /// Requested register width.
        qubits: usize,
        /// Hard cap of the representation.
        limit: usize,
        /// Which dense representation was requested
        /// (`"statevector"` or `"density matrix"`).
        representation: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RegisterTooLarge {
                qubits,
                limit,
                representation,
            } => write!(
                f,
                "{representation} over {qubits} qubits exceeds the {limit}-qubit dense limit"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_representation() {
        let e = SimError::RegisterTooLarge {
            qubits: 30,
            limit: 28,
            representation: "statevector",
        };
        let msg = e.to_string();
        assert!(msg.contains("statevector"));
        assert!(msg.contains("30"));
        assert!(msg.contains("28"));
    }
}
