//! Exact density-matrix simulation with Pauli error channels.
//!
//! The trajectory simulator ([`crate::TrajectorySimulator`]) is a
//! Monte-Carlo approximation of the mixed-state evolution this module
//! computes exactly. Both share the same error model — after each gate a
//! uniformly random non-identity Pauli fires on its operands with the
//! calibrated probability — so the density matrix serves as ground truth
//! for validating trajectory convergence (see the cross-validation test
//! below). Cost is `O(4^n)` memory and `O(4^n)` per gate, practical up to
//! ~10 qubits — enough for the paper's smallest ARG instances.
//!
//! # Closed-form channels
//!
//! The uniform Pauli channels are applied *allocation-free* by exploiting
//! the Pauli-twirl identity `Σ_P P A P = d·Tr(A)·I` (sum over the full
//! `d²`-element Pauli group of a `d`-dimensional subsystem):
//!
//! * one qubit — elements off-diagonal in qubit `q` scale by `1 − 4p/3`;
//!   diagonal-in-`q` element pairs mix as
//!   `ρ'(r,c) = (1 − 2p/3)·ρ(r,c) + (2p/3)·ρ(r⊕b, c⊕b)`;
//! * two qubits — per operand-subsystem 4×4 block `A`,
//!   `A' = (1 − 16p/15)·A + (4p/15)·Tr(A)·I₄`.
//!
//! The old branch-per-Pauli evaluation (3 resp. 15 full-matrix clones and
//! two-sided conjugations each) survives only as the reference
//! implementation the equivalence tests compare against. Diagonal gates
//! likewise skip the two-sided matrix product: `U = diag(d)` conjugates as
//! `ρ(r,c) ← d(r)·ρ(r,c)·conj(d(c))` in one pass, and `X`/`CNOT`/`SWAP`
//! conjugate by their index involution.

use qcircuit::kernel::Kernel;
use qcircuit::math::{Complex, Matrix2, ONE, ZERO};
use qcircuit::{Circuit, Gate, Instruction};

use crate::{par, NoiseModel, SimError, SimOptions};

/// Hard cap on the dense density-matrix width: a 13-qubit matrix is
/// `4^13` complex entries, ~1 GiB.
pub const MAX_QUBITS: usize = 13;

/// A dense density matrix over `n` qubits, row-major `ρ[r * dim + c]`
/// with the same bit convention as [`crate::StateVector`].
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    rho: Vec<Complex>,
}

impl DensityMatrix {
    /// The pure state `|0...0⟩⟨0...0|`.
    ///
    /// # Panics
    ///
    /// Panics for more than 13 qubits (the matrix would exceed ~1 GiB).
    /// Use [`DensityMatrix::try_new`] to get an error instead.
    pub fn new(num_qubits: usize) -> Self {
        match Self::try_new(num_qubits) {
            Ok(dm) => dm,
            Err(e) => panic!("density matrix too large: {e}"),
        }
    }

    /// The pure state `|0...0⟩⟨0...0|`, or [`SimError::RegisterTooLarge`]
    /// when the register exceeds [`MAX_QUBITS`].
    pub fn try_new(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits > MAX_QUBITS {
            return Err(SimError::RegisterTooLarge {
                qubits: num_qubits,
                limit: MAX_QUBITS,
                representation: "density matrix",
            });
        }
        let dim = 1usize << num_qubits;
        let mut rho = vec![ZERO; dim * dim];
        rho[0] = ONE;
        qtrace::global().gauge_max("qsim/peak_live_amplitudes", rho.len() as u64);
        Ok(DensityMatrix { num_qubits, rho })
    }

    /// Resets to `|0...0⟩⟨0...0|` in place, reusing the allocation.
    pub fn reset(&mut self) {
        self.rho.fill(ZERO);
        self.rho[0] = ONE;
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// The trace (1.0 up to floating-point error for valid evolutions).
    pub fn trace(&self) -> f64 {
        let dim = self.dim();
        (0..dim).map(|i| self.rho[i * dim + i].re).sum()
    }

    /// The purity `Tr(ρ²)`: 1 for pure states, `1/2^n` for the maximally
    /// mixed state.
    pub fn purity(&self) -> f64 {
        let dim = self.dim();
        let mut total = 0.0;
        for r in 0..dim {
            for c in 0..dim {
                // Tr(ρ²) = Σ_rc ρ_rc ρ_cr = Σ_rc |ρ_rc|² for Hermitian ρ.
                total += self.rho[r * dim + c].norm_sqr();
            }
        }
        total
    }

    /// Computational-basis outcome probabilities (the diagonal).
    pub fn probabilities(&self) -> Vec<f64> {
        let dim = self.dim();
        (0..dim)
            .map(|i| self.rho[i * dim + i].re.max(0.0))
            .collect()
    }

    /// Writes the outcome probabilities into `out`, reusing its
    /// allocation.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        let dim = self.dim();
        out.clear();
        out.extend((0..dim).map(|i| self.rho[i * dim + i].re.max(0.0)));
    }

    /// Applies a unitary single-qubit gate: `ρ ← U ρ U†`.
    fn apply_1q(&mut self, m: &Matrix2, q: usize) {
        let dim = self.dim();
        let bit = 1usize << q;
        // Left multiply U on rows.
        for c in 0..dim {
            for r in 0..dim {
                if r & bit != 0 {
                    continue;
                }
                let r1 = r | bit;
                let a0 = self.rho[r * dim + c];
                let a1 = self.rho[r1 * dim + c];
                self.rho[r * dim + c] = m[0][0] * a0 + m[0][1] * a1;
                self.rho[r1 * dim + c] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
        // Right multiply U† on columns.
        let dag = [
            [m[0][0].conj(), m[1][0].conj()],
            [m[0][1].conj(), m[1][1].conj()],
        ];
        for r in 0..dim {
            for c in 0..dim {
                if c & bit != 0 {
                    continue;
                }
                let c1 = c | bit;
                let a0 = self.rho[r * dim + c];
                let a1 = self.rho[r * dim + c1];
                // (ρ U†)_{rc} = Σ_k ρ_{rk} U†_{kc}
                self.rho[r * dim + c] = a0 * dag[0][0] + a1 * dag[1][0];
                self.rho[r * dim + c1] = a0 * dag[0][1] + a1 * dag[1][1];
            }
        }
    }

    /// Applies a generic two-qubit unitary with explicit index arithmetic
    /// mirroring [`crate::StateVector::apply_2q`] on both sides.
    fn apply_2q_generic(&mut self, instr: &Instruction) {
        let m = instr.gate().matrix4();
        let dim = self.dim();
        let ba = 1usize << instr.q0();
        let bb = 1usize << instr.q1();
        // Left multiply.
        for c in 0..dim {
            for base in 0..dim {
                if base & (ba | bb) != 0 {
                    continue;
                }
                let idx = [base, base | bb, base | ba, base | ba | bb];
                let olds = idx.map(|r| self.rho[r * dim + c]);
                for (ri, &r) in idx.iter().enumerate() {
                    let mut acc = ZERO;
                    for (ci, &old) in olds.iter().enumerate() {
                        acc += m[ri][ci] * old;
                    }
                    self.rho[r * dim + c] = acc;
                }
            }
        }
        // Right multiply by U†.
        for r in 0..dim {
            for base in 0..dim {
                if base & (ba | bb) != 0 {
                    continue;
                }
                let idx = [base, base | bb, base | ba, base | ba | bb];
                let olds = idx.map(|c| self.rho[r * dim + c]);
                for (ci, &c) in idx.iter().enumerate() {
                    let mut acc = ZERO;
                    for (ki, &old) in olds.iter().enumerate() {
                        // (ρ U†)_{rc} = Σ_k ρ_{rk} conj(U_{ck})
                        acc += old * m[ci][ki].conj();
                    }
                    self.rho[r * dim + c] = acc;
                }
            }
        }
    }

    /// Conjugates by a diagonal unitary `U = diag(d)`:
    /// `ρ(r,c) ← d(r)·ρ(r,c)·conj(d(c))` — a single pass instead of two
    /// matrix products.
    fn conjugate_diagonal<D>(&mut self, d: D, threads: usize)
    where
        D: Fn(usize) -> Complex + Sync,
    {
        let dim = self.dim();
        par::chunked(&mut self.rho, dim, threads, |offset, chunk| {
            let row0 = offset / dim;
            for (lr, row) in chunk.chunks_exact_mut(dim).enumerate() {
                let dr = d(row0 + lr);
                for (c, z) in row.iter_mut().enumerate() {
                    *z = dr * *z * d(c).conj();
                }
            }
        });
    }

    /// Conjugates by a self-inverse basis permutation `U|i⟩ = |π(i)⟩`:
    /// `ρ'(r,c) = ρ(π(r), π(c))` — pure index swaps (CNOT, SWAP, X).
    ///
    /// `row_align` is the power-of-two row-block size containing every
    /// `r ↔ π(r)` pair (`2 · highest permuted bit`).
    fn conjugate_involution<P>(&mut self, pi: P, row_align: usize, threads: usize)
    where
        P: Fn(usize) -> usize + Sync,
    {
        let dim = self.dim();
        par::chunked(&mut self.rho, row_align * dim, threads, |offset, chunk| {
            let row0 = offset / dim;
            let rows = chunk.len() / dim;
            for lr in 0..rows {
                let r = row0 + lr;
                let pr = pi(r);
                for c in 0..dim {
                    let pc = pi(c);
                    if (r, c) < (pr, pc) {
                        chunk.swap(lr * dim + c, (pr - row0) * dim + pc);
                    }
                }
            }
        });
    }

    /// Conjugates by a single-qubit anti-diagonal `a0' = z0·a1, a1' = z1·a0`
    /// (X, Y): `ρ'(r,c) = u(r)·ρ(r⊕b, c⊕b)·conj(u(c))` where `u(i)` is the
    /// factor the flip applies landing on `i`.
    fn conjugate_flip1(&mut self, bit: usize, z0: Complex, z1: Complex, threads: usize) {
        let dim = self.dim();
        let u = move |i: usize| if i & bit == 0 { z0 } else { z1 };
        par::chunked(&mut self.rho, 2 * bit * dim, threads, |offset, chunk| {
            let row0 = offset / dim;
            let rows = chunk.len() / dim;
            for lr in 0..rows {
                let r = row0 + lr;
                if r & bit != 0 {
                    continue;
                }
                let pr = r | bit;
                for c in 0..dim {
                    let pc = c ^ bit;
                    let i = lr * dim + c;
                    let j = (pr - row0) * dim + pc;
                    let (a, b) = (chunk[i], chunk[j]);
                    chunk[i] = u(r) * b * u(c).conj();
                    chunk[j] = u(pr) * a * u(pc).conj();
                }
            }
        });
    }

    /// Applies a unitary instruction through the cheapest conjugation rule:
    /// diagonal gates multiply phases in one pass, CNOT/SWAP/X permute
    /// indices, everything else falls back to the two-sided matrix product.
    fn apply_unitary(&mut self, instr: &Instruction, threads: usize) {
        let b0 = 1usize << instr.q0();
        match instr.gate().kernel() {
            Kernel::Identity => {}
            Kernel::Phase1 { z0, z1 } => {
                self.conjugate_diagonal(move |i| if i & b0 == 0 { z0 } else { z1 }, threads);
            }
            Kernel::Phase2 { phases } => {
                let b1 = 1usize << instr.q1();
                self.conjugate_diagonal(
                    move |i| phases[(usize::from(i & b0 != 0) << 1) | usize::from(i & b1 != 0)],
                    threads,
                );
            }
            Kernel::Flip1 { z0, z1 } => self.conjugate_flip1(b0, z0, z1, threads),
            Kernel::ControlledFlip => {
                let bt = 1usize << instr.q1();
                self.conjugate_involution(
                    move |i| if i & b0 != 0 { i ^ bt } else { i },
                    2 * b0.max(bt),
                    threads,
                );
            }
            Kernel::Swap => {
                let b1 = 1usize << instr.q1();
                self.conjugate_involution(
                    move |i| {
                        let (x, y) = (i & b0 != 0, i & b1 != 0);
                        if x != y {
                            i ^ (b0 | b1)
                        } else {
                            i
                        }
                    },
                    2 * b0.max(b1),
                    threads,
                );
            }
            Kernel::Dense1(m) => self.apply_1q(&m, instr.q0()),
            Kernel::Dense2(_) => self.apply_2q_generic(instr),
            Kernel::Measure => panic!("cannot apply measurement as a unitary"),
        }
    }

    /// The uniform Pauli channel on one qubit with total error probability
    /// `p`: `ρ ← (1-p)ρ + p/3 (XρX + YρY + ZρZ)`, in closed form: elements
    /// off-diagonal in qubit `q` scale by `1 − 4p/3`; diagonal-in-`q`
    /// pairs mix with weight `2p/3`.
    fn apply_pauli_channel_1q(&mut self, q: usize, p: f64, threads: usize) {
        if p <= 0.0 {
            return;
        }
        let dim = self.dim();
        let bit = 1usize << q;
        let off_scale = 1.0 - 4.0 * p / 3.0;
        let keep = 1.0 - 2.0 * p / 3.0;
        let mix = 2.0 * p / 3.0;
        par::chunked(&mut self.rho, 2 * bit * dim, threads, |offset, chunk| {
            let row0 = offset / dim;
            let rows = chunk.len() / dim;
            for lr in 0..rows {
                let r = row0 + lr;
                let rb = r & bit != 0;
                for c in 0..dim {
                    let i = lr * dim + c;
                    if rb != (c & bit != 0) {
                        chunk[i] = chunk[i].scale(off_scale);
                    } else if !rb {
                        // Representative of the pair {(r,c), (r|b, c|b)}.
                        let j = (r | bit) - row0;
                        let j = j * dim + (c | bit);
                        let (a, b) = (chunk[i], chunk[j]);
                        chunk[i] = a.scale(keep) + b.scale(mix);
                        chunk[j] = b.scale(keep) + a.scale(mix);
                    }
                }
            }
        });
    }

    /// The uniform two-qubit Pauli channel (15 non-identity Paulis, each
    /// with weight `p/15`), matching the trajectory injector. Closed form
    /// per operand-subsystem 4×4 block `A`:
    /// `A' = (1 − 16p/15)·A + (4p/15)·Tr(A)·I₄`.
    fn apply_pauli_channel_2q(&mut self, a: usize, b: usize, p: f64, threads: usize) {
        if p <= 0.0 {
            return;
        }
        let dim = self.dim();
        let ba = 1usize << a;
        let bb = 1usize << b;
        let mask = ba | bb;
        let sub = [0, bb, ba, ba | bb];
        let scale = 1.0 - 16.0 * p / 15.0;
        let mix = 4.0 * p / 15.0;
        let row_align = 2 * ba.max(bb);
        par::chunked(&mut self.rho, row_align * dim, threads, |offset, chunk| {
            let row0 = offset / dim;
            let rows = chunk.len() / dim;
            for lr in 0..rows {
                let r = row0 + lr;
                if r & mask != 0 {
                    continue;
                }
                for cc in 0..dim {
                    if cc & mask != 0 {
                        continue;
                    }
                    let mut tr = ZERO;
                    for &j in &sub {
                        tr += chunk[((r | j) - row0) * dim + (cc | j)];
                    }
                    let add = tr.scale(mix);
                    for &j in &sub {
                        let row_base = ((r | j) - row0) * dim;
                        for &k in &sub {
                            let i = row_base + (cc | k);
                            chunk[i] = chunk[i].scale(scale);
                            if j == k {
                                chunk[i] += add;
                            }
                        }
                    }
                }
            }
        });
    }
}

/// Evolves `circuit` exactly under `model`'s gate-error channels (idle
/// depolarization per concurrency layer included; readout error is *not*
/// applied — compare against pre-readout trajectory states).
///
/// # Panics
///
/// Panics if the circuit exceeds the density-matrix size limit or applies
/// a two-qubit gate across an uncalibrated pair.
pub fn evolve_with_noise(circuit: &Circuit, model: &NoiseModel) -> DensityMatrix {
    evolve_with_noise_with(circuit, model, &SimOptions::default())
}

/// [`evolve_with_noise`] with explicit engine options. The density matrix
/// over `n` qubits has `4^n` entries, so the serial crossover compares
/// `2n` against `opts.crossover_qubits`.
///
/// # Panics
///
/// Same conditions as [`evolve_with_noise`].
pub fn evolve_with_noise_with(
    circuit: &Circuit,
    model: &NoiseModel,
    opts: &SimOptions,
) -> DensityMatrix {
    let n = circuit.num_qubits();
    let threads = opts.effective_threads(2 * n);
    let mut rho = DensityMatrix::new(n);
    let mut busy = vec![false; n];
    for layer in qcircuit::layers::asap_layers(circuit) {
        busy.fill(false);
        for instr in &layer {
            for q in instr.qubit_vec() {
                busy[q] = true;
            }
            if instr.gate().is_unitary() {
                rho.apply_unitary(instr, threads);
            }
            match instr.gate() {
                Gate::Measure | Gate::Id => {}
                g if g.arity() == 2 => {
                    let p = model.calibration().cnot_error(instr.q0(), instr.q1());
                    rho.apply_pauli_channel_2q(instr.q0(), instr.q1(), p, threads);
                }
                _ => {
                    let p = model.calibration().single_qubit_error(instr.q0());
                    rho.apply_pauli_channel_1q(instr.q0(), p, threads);
                }
            }
        }
        let p_idle = model.idle_error_per_layer();
        if p_idle > 0.0 {
            for (q, is_busy) in busy.iter().enumerate() {
                if !is_busy {
                    rho.apply_pauli_channel_1q(q, p_idle, threads);
                }
            }
        }
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoiseModel, TrajectorySimulator};
    use qhw::{Calibration, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    /// The pre-closed-form channel: explicit `(1-p)ρ + Σ_P (p/k) PρP`
    /// with one full-matrix clone per Pauli branch. Kept as the reference
    /// the closed-form fast paths are verified against.
    fn reference_pauli_channel(rho: &DensityMatrix, qubits: &[usize], p: f64) -> DensityMatrix {
        let paulis = [None, Some(Gate::X), Some(Gate::Y), Some(Gate::Z)];
        let combos: Vec<Vec<(usize, Gate)>> = match qubits {
            [q] => paulis
                .iter()
                .skip(1)
                .map(|g| vec![(*q, g.unwrap())])
                .collect(),
            [a, b] => {
                let mut out = Vec::new();
                for (i, pa) in paulis.iter().enumerate() {
                    for (j, pb) in paulis.iter().enumerate() {
                        if i == 0 && j == 0 {
                            continue;
                        }
                        let mut combo = Vec::new();
                        if let Some(g) = pa {
                            combo.push((*a, *g));
                        }
                        if let Some(g) = pb {
                            combo.push((*b, *g));
                        }
                        out.push(combo);
                    }
                }
                out
            }
            _ => panic!("reference channel supports 1 or 2 qubits"),
        };
        let weight = p / combos.len() as f64;
        let mut mixed = rho.clone();
        for z in &mut mixed.rho {
            *z = z.scale(1.0 - p);
        }
        for combo in combos {
            let mut branch = rho.clone();
            for (q, g) in combo {
                branch.apply_1q(&g.matrix2(), q);
            }
            for (z, o) in mixed.rho.iter_mut().zip(&branch.rho) {
                *z += o.scale(weight);
            }
        }
        mixed
    }

    fn nontrivial_state(n: usize) -> DensityMatrix {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        c.rx(0.4, 0);
        c.rzz(0.9, 0, n - 1);
        c.cx(0, 1);
        c.ry(1.1, n - 1);
        let mut rho = DensityMatrix::new(n);
        for instr in c.iter() {
            rho.apply_unitary(instr, 1);
        }
        rho
    }

    #[test]
    fn closed_form_1q_channel_matches_reference() {
        for q in 0..3 {
            let mut rho = nontrivial_state(3);
            let want = reference_pauli_channel(&rho, &[q], 0.13);
            rho.apply_pauli_channel_1q(q, 0.13, 1);
            for (got, exp) in rho.rho.iter().zip(&want.rho) {
                assert!(got.approx_eq(*exp, 1e-12), "qubit {q}: {got:?} vs {exp:?}");
            }
        }
    }

    #[test]
    fn closed_form_2q_channel_matches_reference() {
        for (a, b) in [(0, 1), (2, 0), (1, 2)] {
            let mut rho = nontrivial_state(3);
            let want = reference_pauli_channel(&rho, &[a, b], 0.21);
            rho.apply_pauli_channel_2q(a, b, 0.21, 1);
            for (got, exp) in rho.rho.iter().zip(&want.rho) {
                assert!(
                    got.approx_eq(*exp, 1e-12),
                    "pair ({a},{b}): {got:?} vs {exp:?}"
                );
            }
        }
    }

    #[test]
    fn conjugation_fast_paths_match_generic_product() {
        let gates = [
            Instruction::one(Gate::Rz((0.7).into()), 1),
            Instruction::one(Gate::U1((-0.4).into()), 0),
            Instruction::one(Gate::Z, 2),
            Instruction::one(Gate::X, 1),
            Instruction::one(Gate::Y, 0),
            Instruction::two(Gate::Rzz((0.6).into()), 0, 2),
            Instruction::two(Gate::CPhase((1.2).into()), 2, 1),
            Instruction::two(Gate::Cz, 0, 1),
            Instruction::two(Gate::Cnot, 2, 0),
            Instruction::two(Gate::Swap, 1, 2),
        ];
        for instr in gates {
            let mut fast = nontrivial_state(3);
            fast.apply_unitary(&instr, 1);
            let mut slow = nontrivial_state(3);
            if instr.gate().arity() == 1 {
                slow.apply_1q(&instr.gate().matrix2(), instr.q0());
            } else {
                slow.apply_2q_generic(&instr);
            }
            for (got, exp) in fast.rho.iter().zip(&slow.rho) {
                assert!(got.approx_eq(*exp, 1e-12), "mismatch for {instr}");
            }
        }
    }

    #[test]
    fn channels_agree_across_thread_counts() {
        let mut serial = nontrivial_state(3);
        let mut threaded = nontrivial_state(3);
        serial.apply_pauli_channel_2q(0, 2, 0.15, 1);
        serial.apply_pauli_channel_1q(1, 0.07, 1);
        threaded.apply_pauli_channel_2q(0, 2, 0.15, 4);
        threaded.apply_pauli_channel_1q(1, 0.07, 4);
        assert_eq!(serial, threaded, "threaded channels must be bit-identical");
    }

    #[test]
    fn try_new_rejects_oversized_registers() {
        let err = DensityMatrix::try_new(MAX_QUBITS + 1).unwrap_err();
        assert_eq!(
            err,
            SimError::RegisterTooLarge {
                qubits: MAX_QUBITS + 1,
                limit: MAX_QUBITS,
                representation: "density matrix",
            }
        );
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut rho = nontrivial_state(3);
        rho.reset();
        assert_eq!(rho, DensityMatrix::new(3));
    }

    #[test]
    fn noiseless_density_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rzz(0.7, 1, 2);
        c.rx(0.4, 2);
        let topo = Topology::fully_connected(3);
        let cal = Calibration::uniform(&topo, 0.0, 0.0, 0.0);
        // MIN_ERROR clamping makes this effectively (not exactly) zero
        // noise; compare with loose tolerance.
        let model = NoiseModel::new(cal).with_idle_error(0.0);
        let rho = evolve_with_noise(&c, &model);
        let sv = crate::StateVector::from_circuit(&c);
        for (dm_p, sv_p) in rho.probabilities().iter().zip(sv.probabilities()) {
            assert_close(*dm_p, sv_p, 1e-4);
        }
        assert_close(rho.trace(), 1.0, 1e-9);
        assert!(rho.purity() > 0.999);
    }

    #[test]
    fn noise_mixes_the_state() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let topo = Topology::fully_connected(2);
        let cal = Calibration::uniform(&topo, 0.2, 0.05, 0.0);
        let model = NoiseModel::new(cal).with_idle_error(0.0);
        let rho = evolve_with_noise(&c, &model);
        assert_close(rho.trace(), 1.0, 1e-9);
        assert!(rho.purity() < 0.9, "purity {}", rho.purity());
        // Errors leak probability into the odd-parity states.
        let p = rho.probabilities();
        assert!(p[0b01] + p[0b10] > 0.01);
    }

    #[test]
    fn trajectories_converge_to_density_matrix() {
        // The headline cross-validation: averaged trajectory outcomes must
        // approach the exact channel evolution.
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rzz(0.9, 1, 2);
        c.rx(0.5, 0);
        c.cx(1, 2);
        let topo = Topology::fully_connected(3);
        let cal = Calibration::uniform(&topo, 0.08, 0.02, 0.0);
        let model = NoiseModel::new(cal).with_idle_error(0.01);
        let exact = evolve_with_noise(&c, &model).probabilities();

        let sim = TrajectorySimulator::new(model);
        let mut rng = StdRng::seed_from_u64(12);
        let runs = 4000;
        let mut mean = [0.0f64; 8];
        for _ in 0..runs {
            let sv = sim.run_trajectory(&c, &mut rng);
            for (m, p) in mean.iter_mut().zip(sv.probabilities()) {
                *m += p / runs as f64;
            }
        }
        for (idx, (got, want)) in mean.iter().zip(&exact).enumerate() {
            assert!(
                (got - want).abs() < 0.015,
                "state {idx}: trajectories {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn purity_decreases_monotonically_with_error_rate() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.cx(0, 1);
        let topo = Topology::fully_connected(2);
        let mut last = f64::INFINITY;
        for err in [0.01, 0.05, 0.15, 0.3] {
            let cal = Calibration::uniform(&topo, err, 0.0, 0.0);
            let model = NoiseModel::new(cal).with_idle_error(0.0);
            let purity = evolve_with_noise(&c, &model).purity();
            assert!(purity < last, "purity {purity} at error {err}");
            last = purity;
        }
    }

    #[test]
    #[should_panic]
    fn oversized_density_matrix_panics() {
        let _ = DensityMatrix::new(14);
    }
}
