//! Exact density-matrix simulation with Pauli error channels.
//!
//! The trajectory simulator ([`crate::TrajectorySimulator`]) is a
//! Monte-Carlo approximation of the mixed-state evolution this module
//! computes exactly. Both share the same error model — after each gate a
//! uniformly random non-identity Pauli fires on its operands with the
//! calibrated probability — so the density matrix serves as ground truth
//! for validating trajectory convergence (see the cross-validation test
//! below). Cost is `O(4^n)` memory and `O(4^n)` per gate, practical up to
//! ~10 qubits — enough for the paper's smallest ARG instances.

use qcircuit::math::{Complex, Matrix2, ONE, ZERO};
use qcircuit::{Circuit, Gate, Instruction};

use crate::NoiseModel;

/// A dense density matrix over `n` qubits, row-major `ρ[r * dim + c]`
/// with the same bit convention as [`crate::StateVector`].
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    rho: Vec<Complex>,
}

impl DensityMatrix {
    /// The pure state `|0...0⟩⟨0...0|`.
    ///
    /// # Panics
    ///
    /// Panics for more than 13 qubits (the matrix would exceed ~1 GiB).
    pub fn new(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 13,
            "density matrix too large: {num_qubits} qubits"
        );
        let dim = 1usize << num_qubits;
        let mut rho = vec![ZERO; dim * dim];
        rho[0] = ONE;
        DensityMatrix { num_qubits, rho }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// The trace (1.0 up to floating-point error for valid evolutions).
    pub fn trace(&self) -> f64 {
        let dim = self.dim();
        (0..dim).map(|i| self.rho[i * dim + i].re).sum()
    }

    /// The purity `Tr(ρ²)`: 1 for pure states, `1/2^n` for the maximally
    /// mixed state.
    pub fn purity(&self) -> f64 {
        let dim = self.dim();
        let mut total = 0.0;
        for r in 0..dim {
            for c in 0..dim {
                // Tr(ρ²) = Σ_rc ρ_rc ρ_cr = Σ_rc |ρ_rc|² for Hermitian ρ.
                total += self.rho[r * dim + c].norm_sqr();
            }
        }
        total
    }

    /// Computational-basis outcome probabilities (the diagonal).
    pub fn probabilities(&self) -> Vec<f64> {
        let dim = self.dim();
        (0..dim)
            .map(|i| self.rho[i * dim + i].re.max(0.0))
            .collect()
    }

    /// Applies a unitary single-qubit gate: `ρ ← U ρ U†`.
    fn apply_1q(&mut self, m: &Matrix2, q: usize) {
        let dim = self.dim();
        let bit = 1usize << q;
        // Left multiply U on rows.
        for c in 0..dim {
            for r in 0..dim {
                if r & bit != 0 {
                    continue;
                }
                let r1 = r | bit;
                let a0 = self.rho[r * dim + c];
                let a1 = self.rho[r1 * dim + c];
                self.rho[r * dim + c] = m[0][0] * a0 + m[0][1] * a1;
                self.rho[r1 * dim + c] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
        // Right multiply U† on columns.
        let dag = [
            [m[0][0].conj(), m[1][0].conj()],
            [m[0][1].conj(), m[1][1].conj()],
        ];
        for r in 0..dim {
            for c in 0..dim {
                if c & bit != 0 {
                    continue;
                }
                let c1 = c | bit;
                let a0 = self.rho[r * dim + c];
                let a1 = self.rho[r * dim + c1];
                // (ρ U†)_{rc} = Σ_k ρ_{rk} U†_{kc}
                self.rho[r * dim + c] = a0 * dag[0][0] + a1 * dag[1][0];
                self.rho[r * dim + c1] = a0 * dag[0][1] + a1 * dag[1][1];
            }
        }
    }

    /// Applies a unitary instruction (two-qubit gates via their CNOT/phase
    /// structure using the generic 1q path plus permutations would be
    /// intricate; instead both sides are applied with explicit index
    /// arithmetic mirroring [`crate::StateVector::apply_2q`]).
    fn apply_unitary(&mut self, instr: &Instruction) {
        match instr.gate() {
            g if g.arity() == 1 => self.apply_1q(&g.matrix2(), instr.q0()),
            g => {
                let m = g.matrix4();
                let dim = self.dim();
                let ba = 1usize << instr.q0();
                let bb = 1usize << instr.q1();
                // Left multiply.
                for c in 0..dim {
                    for base in 0..dim {
                        if base & (ba | bb) != 0 {
                            continue;
                        }
                        let idx = [base, base | bb, base | ba, base | ba | bb];
                        let olds = idx.map(|r| self.rho[r * dim + c]);
                        for (ri, &r) in idx.iter().enumerate() {
                            let mut acc = ZERO;
                            for (ci, &old) in olds.iter().enumerate() {
                                acc += m[ri][ci] * old;
                            }
                            self.rho[r * dim + c] = acc;
                        }
                    }
                }
                // Right multiply by U†.
                for r in 0..dim {
                    for base in 0..dim {
                        if base & (ba | bb) != 0 {
                            continue;
                        }
                        let idx = [base, base | bb, base | ba, base | ba | bb];
                        let olds = idx.map(|c| self.rho[r * dim + c]);
                        for (ci, &c) in idx.iter().enumerate() {
                            let mut acc = ZERO;
                            for (ki, &old) in olds.iter().enumerate() {
                                // (ρ U†)_{rc} = Σ_k ρ_{rk} conj(U_{ck})
                                acc += old * m[ci][ki].conj();
                            }
                            self.rho[r * dim + c] = acc;
                        }
                    }
                }
            }
        }
    }

    /// Applies the uniform Pauli error channel on one qubit with total
    /// error probability `p`: `ρ ← (1-p)ρ + p/3 (XρX + YρY + ZρZ)`.
    fn apply_pauli_channel_1q(&mut self, q: usize, p: f64) {
        if p <= 0.0 {
            return;
        }
        let mut mixed = self.clone();
        mixed.scale(0.0);
        for gate in [Gate::X, Gate::Y, Gate::Z] {
            let mut branch = self.clone();
            branch.apply_1q(&gate.matrix2(), q);
            mixed.add_scaled(&branch, p / 3.0);
        }
        self.scale(1.0 - p);
        self.add_scaled_in_place(&mixed);
    }

    /// The uniform two-qubit Pauli channel (15 non-identity Paulis, each
    /// with weight `p/15`), matching the trajectory injector.
    fn apply_pauli_channel_2q(&mut self, a: usize, b: usize, p: f64) {
        if p <= 0.0 {
            return;
        }
        let paulis = [None, Some(Gate::X), Some(Gate::Y), Some(Gate::Z)];
        let mut mixed = self.clone();
        mixed.scale(0.0);
        for (i, pa) in paulis.iter().enumerate() {
            for (j, pb) in paulis.iter().enumerate() {
                if i == 0 && j == 0 {
                    continue;
                }
                let mut branch = self.clone();
                if let Some(g) = pa {
                    branch.apply_1q(&g.matrix2(), a);
                }
                if let Some(g) = pb {
                    branch.apply_1q(&g.matrix2(), b);
                }
                mixed.add_scaled(&branch, p / 15.0);
            }
        }
        self.scale(1.0 - p);
        self.add_scaled_in_place(&mixed);
    }

    fn scale(&mut self, s: f64) {
        for z in &mut self.rho {
            *z = z.scale(s);
        }
    }

    fn add_scaled(&mut self, other: &DensityMatrix, s: f64) {
        for (z, o) in self.rho.iter_mut().zip(&other.rho) {
            *z += o.scale(s);
        }
    }

    fn add_scaled_in_place(&mut self, other: &DensityMatrix) {
        for (z, o) in self.rho.iter_mut().zip(&other.rho) {
            *z += *o;
        }
    }
}

/// Evolves `circuit` exactly under `model`'s gate-error channels (idle
/// depolarization per concurrency layer included; readout error is *not*
/// applied — compare against pre-readout trajectory states).
///
/// # Panics
///
/// Panics if the circuit exceeds the density-matrix size limit or applies
/// a two-qubit gate across an uncalibrated pair.
pub fn evolve_with_noise(circuit: &Circuit, model: &NoiseModel) -> DensityMatrix {
    let n = circuit.num_qubits();
    let mut rho = DensityMatrix::new(n);
    for layer in qcircuit::layers::asap_layers(circuit) {
        let mut busy = vec![false; n];
        for instr in &layer {
            for q in instr.qubit_vec() {
                busy[q] = true;
            }
            if instr.gate().is_unitary() {
                rho.apply_unitary(instr);
            }
            match instr.gate() {
                Gate::Measure | Gate::Id => {}
                g if g.arity() == 2 => {
                    let p = model.calibration().cnot_error(instr.q0(), instr.q1());
                    rho.apply_pauli_channel_2q(instr.q0(), instr.q1(), p);
                }
                _ => {
                    let p = model.calibration().single_qubit_error(instr.q0());
                    rho.apply_pauli_channel_1q(instr.q0(), p);
                }
            }
        }
        let p_idle = model.idle_error_per_layer();
        if p_idle > 0.0 {
            for (q, is_busy) in busy.iter().enumerate() {
                if !is_busy {
                    rho.apply_pauli_channel_1q(q, p_idle);
                }
            }
        }
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoiseModel, TrajectorySimulator};
    use qhw::{Calibration, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn noiseless_density_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rzz(0.7, 1, 2);
        c.rx(0.4, 2);
        let topo = Topology::fully_connected(3);
        let cal = Calibration::uniform(&topo, 0.0, 0.0, 0.0);
        // MIN_ERROR clamping makes this effectively (not exactly) zero
        // noise; compare with loose tolerance.
        let model = NoiseModel::new(cal).with_idle_error(0.0);
        let rho = evolve_with_noise(&c, &model);
        let sv = crate::StateVector::from_circuit(&c);
        for (dm_p, sv_p) in rho.probabilities().iter().zip(sv.probabilities()) {
            assert_close(*dm_p, sv_p, 1e-4);
        }
        assert_close(rho.trace(), 1.0, 1e-9);
        assert!(rho.purity() > 0.999);
    }

    #[test]
    fn noise_mixes_the_state() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let topo = Topology::fully_connected(2);
        let cal = Calibration::uniform(&topo, 0.2, 0.05, 0.0);
        let model = NoiseModel::new(cal).with_idle_error(0.0);
        let rho = evolve_with_noise(&c, &model);
        assert_close(rho.trace(), 1.0, 1e-9);
        assert!(rho.purity() < 0.9, "purity {}", rho.purity());
        // Errors leak probability into the odd-parity states.
        let p = rho.probabilities();
        assert!(p[0b01] + p[0b10] > 0.01);
    }

    #[test]
    fn trajectories_converge_to_density_matrix() {
        // The headline cross-validation: averaged trajectory outcomes must
        // approach the exact channel evolution.
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rzz(0.9, 1, 2);
        c.rx(0.5, 0);
        c.cx(1, 2);
        let topo = Topology::fully_connected(3);
        let cal = Calibration::uniform(&topo, 0.08, 0.02, 0.0);
        let model = NoiseModel::new(cal).with_idle_error(0.01);
        let exact = evolve_with_noise(&c, &model).probabilities();

        let sim = TrajectorySimulator::new(model);
        let mut rng = StdRng::seed_from_u64(12);
        let runs = 4000;
        let mut mean = [0.0f64; 8];
        for _ in 0..runs {
            let sv = sim.run_trajectory(&c, &mut rng);
            for (m, p) in mean.iter_mut().zip(sv.probabilities()) {
                *m += p / runs as f64;
            }
        }
        for (idx, (got, want)) in mean.iter().zip(&exact).enumerate() {
            assert!(
                (got - want).abs() < 0.015,
                "state {idx}: trajectories {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn purity_decreases_monotonically_with_error_rate() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.cx(0, 1);
        let topo = Topology::fully_connected(2);
        let mut last = f64::INFINITY;
        for err in [0.01, 0.05, 0.15, 0.3] {
            let cal = Calibration::uniform(&topo, err, 0.0, 0.0);
            let model = NoiseModel::new(cal).with_idle_error(0.0);
            let purity = evolve_with_noise(&c, &model).purity();
            assert!(purity < last, "purity {purity} at error {err}");
            last = purity;
        }
    }

    #[test]
    #[should_panic]
    fn oversized_density_matrix_panics() {
        let _ = DensityMatrix::new(14);
    }
}
