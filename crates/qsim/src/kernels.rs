//! The statevector kernel engine: specialized in-place update rules for
//! every gate, blocked loops instead of per-index branch tests, scoped
//! multi-threading, and fusion of diagonal-gate runs into a single
//! parity-counting pass.
//!
//! # Dispatch
//!
//! [`Op::from_instruction`] lowers an instruction to the cheapest exact
//! update rule, extending [`qcircuit::kernel::Kernel`] with the structured
//! real-rotation mixers (`H`, `RX`, `RY`) that the generic `Dense1` matrix
//! product would otherwise handle with twice the flops:
//!
//! | gates                     | rule                                       |
//! |---------------------------|--------------------------------------------|
//! | `Z S T RZ U1`             | per-amplitude phase multiply               |
//! | `CZ CPHASE RZZ`           | per-amplitude phase multiply (2q key)      |
//! | `X Y`                     | pair swap with phases                      |
//! | `CNOT SWAP`               | index-pair swap, no arithmetic             |
//! | `H`                       | `s·(a0±a1)` butterfly                      |
//! | `RX RY`                   | real 2×2 rotation (4 real mul/entry)       |
//! | `U2 U3` (and unknowns)    | generic `Matrix2`/`Matrix4` product        |
//!
//! # Threading
//!
//! All kernels couple an amplitude only to partners inside an aligned
//! block of `2^(max_operand_bit + 1)` indices, so [`par::chunked`] splits
//! the buffer on those boundaries and each scoped thread works
//! independently. A single-qubit gate on the register's *top* qubit is the
//! one shape that alignment cannot split; it goes through [`par::zipped`]
//! on the two register halves instead. Two-qubit gates touching the top
//! qubit fall back to serial (their share of runtime is negligible: at
//! most one qubit per circuit is affected). Every rule reads only
//! pre-update values of its own block, so results are bit-for-bit
//! identical for every thread count.
//!
//! # Diagonal fusion
//!
//! A run of consecutive diagonal gates multiplies each amplitude by a
//! product of phases that depends only on the basis index — so the run
//! collapses into *one* pass over the buffer. [`DiagAccumulator`] merges
//! repeated gates on the same operands algebraically, then classifies the
//! remaining two-qubit terms:
//!
//! * **parity class** (`RZZ`: `phases = [same, diff, diff, same]`) — the
//!   phase depends only on the parity of the two operand bits. A group of
//!   `k` such terms sharing one `(same, diff)` pair (a whole QAOA cost
//!   layer, since every edge uses the same γ) needs just `c` = number of
//!   odd-parity pairs, and the phase is `same^(k-c)·diff^c` — precomputed
//!   in a `k+1`-entry table. When the run is exactly one such group, `c`
//!   is maintained *incrementally* along the sequential index walk
//!   (amortized two popcounts per amplitude, independent of `k`);
//!   otherwise it is recomputed per amplitude (`k` popcounts).
//! * **both-set class** (`CZ`/`CPHASE`: `phases = [1, 1, 1, p]`) — same
//!   trick with `c` = number of pairs with both bits set.
//! * anything else falls back to a 4-entry key lookup per term.
//!
//! # Wall fusion
//!
//! A run of consecutive single-qubit gates (the `H` and `RX` walls of
//! QAOA) is collected by [`WallAccumulator`] and applied
//! low-qubits-first: all gates whose pair stride fits in a cache-sized
//! block are applied back-to-back on each block while it is resident, so
//! the whole low-qubit portion of the wall costs one memory sweep.
//! Distinct-qubit gates commute exactly, and each amplitude still passes
//! through the same per-gate update rules, so results match the unfused
//! path to rounding (and are bit-for-bit identical across thread counts).

use crate::par;
use crate::SimOptions;
use qcircuit::kernel::Kernel;
use qcircuit::math::{matmul2, Complex, Matrix2, Matrix4, ONE, ZERO};
use qcircuit::{Gate, Instruction};

/// Streaming instruction applier that fuses runs of diagonal gates across
/// `apply` calls. The engine behind [`crate::StateVector::apply_circuit_with`]
/// and the trajectory simulator: callers stream instructions through
/// [`FusedApplier::apply`] and must [`FusedApplier::flush`] before reading
/// the amplitudes (or interleaving out-of-band updates such as Pauli
/// injections).
pub(crate) struct FusedApplier {
    acc: DiagAccumulator,
    wall: WallAccumulator,
    threads: usize,
    fuse: bool,
}

impl FusedApplier {
    pub(crate) fn new(opts: &SimOptions, num_qubits: usize) -> Self {
        FusedApplier {
            acc: DiagAccumulator::default(),
            wall: WallAccumulator::default(),
            threads: opts.effective_threads(num_qubits),
            fuse: opts.fused_diagonals,
        }
    }

    pub(crate) fn apply(&mut self, amps: &mut [Complex], instr: &Instruction) {
        let op = Op::from_instruction(instr);
        if qtrace::enabled() {
            let q = qtrace::global();
            q.add(op.dispatch_counter(), 1);
            // Timeline marker per kernel dispatch (second opt-in: only
            // recorded when event capture is also on).
            q.instant(op.dispatch_counter());
        }
        if !self.fuse {
            op.apply(amps, self.threads);
            return;
        }
        // At most one accumulator holds gates at any time, so flushing
        // one before feeding the other preserves program order. A 1q
        // diagonal gate joins whichever run is open (it fits both).
        match op {
            Op::Identity => {}
            Op::Phase1 { .. } if !self.wall.is_empty() => self.wall.push(op),
            Op::Phase1 { .. } | Op::Phase2 { .. } => {
                self.wall.flush(amps, self.threads);
                self.acc.push(&op);
            }
            Op::Flip1 { .. }
            | Op::Hadamard { .. }
            | Op::RotX { .. }
            | Op::RotY { .. }
            | Op::Dense1 { .. } => {
                self.acc.flush(amps, self.threads);
                self.wall.push(op);
            }
            _ => {
                self.acc.flush(amps, self.threads);
                self.wall.flush(amps, self.threads);
                op.apply(amps, self.threads);
            }
        }
    }

    pub(crate) fn flush(&mut self, amps: &mut [Complex]) {
        self.acc.flush(amps, self.threads);
        self.wall.flush(amps, self.threads);
    }
}

/// A lowered instruction: the update rule plus its operand bit masks.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// No-op.
    Identity,
    /// `diag(z0, z1)` on one qubit.
    Phase1 {
        bit: usize,
        z0: Complex,
        z1: Complex,
    },
    /// Two-qubit diagonal; `phases` indexed by `(bit_a << 1) | bit_b`.
    Phase2 {
        ba: usize,
        bb: usize,
        phases: [Complex; 4],
    },
    /// Anti-diagonal pair swap: `a0' = z0·a1`, `a1' = z1·a0` (X, Y).
    Flip1 {
        bit: usize,
        z0: Complex,
        z1: Complex,
    },
    /// CNOT: swap the target pair where the control bit is set.
    Cnot { control: usize, target: usize },
    /// SWAP: exchange the operand bits of every index.
    Swap { ba: usize, bb: usize },
    /// Hadamard butterfly `s·(a0 + a1), s·(a0 - a1)`.
    Hadamard { bit: usize },
    /// `RX(θ)`: `[[c, -is], [-is, c]]` with `c = cos θ/2`, `s = sin θ/2`.
    RotX { bit: usize, c: f64, s: f64 },
    /// `RY(θ)`: real rotation `[[c, -s], [s, c]]`.
    RotY { bit: usize, c: f64, s: f64 },
    /// Generic dense 2×2.
    Dense1 { bit: usize, m: Matrix2 },
    /// Generic dense 4×4; row/col index is `(bit_a << 1) | bit_b`.
    Dense2 { ba: usize, bb: usize, m: Matrix4 },
}

impl Op {
    /// Lowers a unitary instruction to its update rule.
    ///
    /// # Panics
    ///
    /// Panics on measurement instructions — callers filter them first.
    pub(crate) fn from_instruction(instr: &Instruction) -> Op {
        let b0 = || 1usize << instr.q0();
        let b1 = || 1usize << instr.q1();
        match instr.gate() {
            // Structured dense gates the Kernel classification keeps as
            // Dense1: lower them to cheaper real-arithmetic rules here.
            Gate::H => Op::Hadamard { bit: b0() },
            Gate::Rx(t) => {
                let t = t.value();
                Op::RotX {
                    bit: b0(),
                    c: (t / 2.0).cos(),
                    s: (t / 2.0).sin(),
                }
            }
            Gate::Ry(t) => {
                let t = t.value();
                Op::RotY {
                    bit: b0(),
                    c: (t / 2.0).cos(),
                    s: (t / 2.0).sin(),
                }
            }
            g => match g.kernel() {
                Kernel::Identity => Op::Identity,
                Kernel::Phase1 { z0, z1 } => Op::Phase1 { bit: b0(), z0, z1 },
                Kernel::Flip1 { z0, z1 } => Op::Flip1 { bit: b0(), z0, z1 },
                Kernel::Phase2 { phases } => Op::Phase2 {
                    ba: b0(),
                    bb: b1(),
                    phases,
                },
                Kernel::ControlledFlip => Op::Cnot {
                    control: b0(),
                    target: b1(),
                },
                Kernel::Swap => Op::Swap { ba: b0(), bb: b1() },
                Kernel::Dense1(m) => Op::Dense1 { bit: b0(), m },
                Kernel::Dense2(m) => Op::Dense2 {
                    ba: b0(),
                    bb: b1(),
                    m,
                },
                Kernel::Measure => panic!("cannot lower a measurement to a unitary kernel"),
            },
        }
    }

    /// The manifest counter this op's dispatches accumulate under, one
    /// per update rule — the "kernel dispatch counts" section of the run
    /// manifest.
    pub(crate) fn dispatch_counter(&self) -> &'static str {
        match self {
            Op::Identity => "qsim/dispatch/identity",
            Op::Phase1 { .. } => "qsim/dispatch/phase1",
            Op::Phase2 { .. } => "qsim/dispatch/phase2",
            Op::Flip1 { .. } => "qsim/dispatch/flip1",
            Op::Cnot { .. } => "qsim/dispatch/cnot",
            Op::Swap { .. } => "qsim/dispatch/swap",
            Op::Hadamard { .. } => "qsim/dispatch/hadamard",
            Op::RotX { .. } => "qsim/dispatch/rotx",
            Op::RotY { .. } => "qsim/dispatch/roty",
            Op::Dense1 { .. } => "qsim/dispatch/dense1",
            Op::Dense2 { .. } => "qsim/dispatch/dense2",
        }
    }

    /// The operand bit mask of a single-qubit op, `None` otherwise.
    fn operand_bit(&self) -> Option<usize> {
        match *self {
            Op::Phase1 { bit, .. }
            | Op::Flip1 { bit, .. }
            | Op::Hadamard { bit }
            | Op::RotX { bit, .. }
            | Op::RotY { bit, .. }
            | Op::Dense1 { bit, .. } => Some(bit),
            _ => None,
        }
    }

    /// The 2×2 matrix of a single-qubit op (used only to compose repeated
    /// gates on one qubit inside a wall).
    ///
    /// # Panics
    ///
    /// Panics on multi-qubit ops.
    fn to_matrix2(&self) -> Matrix2 {
        let r = |x: f64| Complex::new(x, 0.0);
        match *self {
            Op::Phase1 { z0, z1, .. } => [[z0, ZERO], [ZERO, z1]],
            Op::Flip1 { z0, z1, .. } => [[ZERO, z0], [z1, ZERO]],
            Op::Hadamard { .. } => {
                let s = r(std::f64::consts::FRAC_1_SQRT_2);
                [[s, s], [s, -s]]
            }
            Op::RotX { c, s, .. } => {
                let is = Complex::new(0.0, -s);
                [[r(c), is], [is, r(c)]]
            }
            Op::RotY { c, s, .. } => [[r(c), r(-s)], [r(s), r(c)]],
            Op::Dense1 { m, .. } => m,
            _ => panic!("not a single-qubit op"),
        }
    }

    /// Applies the op in place over `threads` workers.
    pub(crate) fn apply(&self, amps: &mut [Complex], threads: usize) {
        match *self {
            Op::Identity => {}
            Op::Phase1 { bit, z0, z1 } => phase1(amps, bit, z0, z1, threads),
            Op::Phase2 { ba, bb, phases } => phase2(amps, ba, bb, &phases, threads),
            Op::Flip1 { bit, z0, z1 } => {
                pairwise(amps, bit, threads, move |a0, a1| (z0 * a1, z1 * a0))
            }
            Op::Cnot { control, target } => cnot(amps, control, target, threads),
            Op::Swap { ba, bb } => swap(amps, ba, bb, threads),
            Op::Hadamard { bit } => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                pairwise(amps, bit, threads, move |a0, a1| {
                    ((a0 + a1).scale(s), (a0 - a1).scale(s))
                });
            }
            Op::RotX { bit, c, s } => pairwise(amps, bit, threads, move |a0, a1| {
                (
                    Complex::new(c * a0.re + s * a1.im, c * a0.im - s * a1.re),
                    Complex::new(s * a0.im + c * a1.re, -s * a0.re + c * a1.im),
                )
            }),
            Op::RotY { bit, c, s } => pairwise(amps, bit, threads, move |a0, a1| {
                (
                    Complex::new(c * a0.re - s * a1.re, c * a0.im - s * a1.im),
                    Complex::new(s * a0.re + c * a1.re, s * a0.im + c * a1.im),
                )
            }),
            Op::Dense1 { bit, m } => pairwise(amps, bit, threads, move |a0, a1| {
                (m[0][0] * a0 + m[0][1] * a1, m[1][0] * a0 + m[1][1] * a1)
            }),
            Op::Dense2 { ba, bb, m } => dense2(amps, ba, bb, &m, threads),
        }
    }
}

/// Runs `update(a0, a1)` over every amplitude pair split by `bit`, blocked
/// so the inner loops are branch-free. The top-qubit case (where a block
/// would cover the whole buffer) splits the register in half and zips.
fn pairwise<F>(amps: &mut [Complex], bit: usize, threads: usize, update: F)
where
    F: Fn(Complex, Complex) -> (Complex, Complex) + Sync,
{
    debug_assert!(2 * bit <= amps.len());
    if 2 * bit == amps.len() {
        let (lo, hi) = amps.split_at_mut(bit);
        par::zipped(lo, hi, threads, |_, ls, hs| {
            for (l, h) in ls.iter_mut().zip(hs.iter_mut()) {
                let (n0, n1) = update(*l, *h);
                *l = n0;
                *h = n1;
            }
        });
        return;
    }
    par::chunked(amps, 2 * bit, threads, |_, chunk| {
        for block in chunk.chunks_exact_mut(2 * bit) {
            let (lo, hi) = block.split_at_mut(bit);
            for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
                let (n0, n1) = update(*l, *h);
                *l = n0;
                *h = n1;
            }
        }
    });
}

fn phase1(amps: &mut [Complex], bit: usize, z0: Complex, z1: Complex, threads: usize) {
    debug_assert!(2 * bit <= amps.len());
    if 2 * bit == amps.len() {
        let (lo, hi) = amps.split_at_mut(bit);
        par::zipped(lo, hi, threads, |_, ls, hs| {
            for a in ls.iter_mut() {
                *a *= z0;
            }
            for a in hs.iter_mut() {
                *a *= z1;
            }
        });
        return;
    }
    par::chunked(amps, 2 * bit, threads, |_, chunk| {
        for block in chunk.chunks_exact_mut(2 * bit) {
            let (lo, hi) = block.split_at_mut(bit);
            for a in lo.iter_mut() {
                *a *= z0;
            }
            for a in hi.iter_mut() {
                *a *= z1;
            }
        }
    });
}

fn phase2(amps: &mut [Complex], ba: usize, bb: usize, phases: &[Complex; 4], threads: usize) {
    let align = 2 * ba.max(bb);
    // Chunk offsets are multiples of `align` > ba, bb, so local indices
    // carry the operand bits.
    par::chunked(amps, align, threads, |_, chunk| {
        for (i, a) in chunk.iter_mut().enumerate() {
            let key = (usize::from(i & ba != 0) << 1) | usize::from(i & bb != 0);
            *a *= phases[key];
        }
    });
}

/// Visits every base index of `chunk` with both operand bits clear,
/// calling `f(chunk, base)`. `bl < bh` are the operand bit masks.
fn for_each_2q_base<F: FnMut(&mut [Complex], usize)>(
    chunk: &mut [Complex],
    bl: usize,
    bh: usize,
    mut f: F,
) {
    let len = chunk.len();
    let mut hi = 0;
    while hi < len {
        let mut mid = hi;
        let hi_end = hi + bh;
        while mid < hi_end {
            for base in mid..mid + bl {
                f(chunk, base);
            }
            mid += 2 * bl;
        }
        hi += 2 * bh;
    }
}

fn cnot(amps: &mut [Complex], control: usize, target: usize, threads: usize) {
    let (bl, bh) = (control.min(target), control.max(target));
    par::chunked(amps, 2 * bh, threads, |_, chunk| {
        for_each_2q_base(chunk, bl, bh, |c, base| {
            c.swap(base | control, base | control | target);
        });
    });
}

fn swap(amps: &mut [Complex], ba: usize, bb: usize, threads: usize) {
    let (bl, bh) = (ba.min(bb), ba.max(bb));
    par::chunked(amps, 2 * bh, threads, |_, chunk| {
        for_each_2q_base(chunk, bl, bh, |c, base| {
            c.swap(base | bl, base | bh);
        });
    });
}

fn dense2(amps: &mut [Complex], ba: usize, bb: usize, m: &Matrix4, threads: usize) {
    let (bl, bh) = (ba.min(bb), ba.max(bb));
    par::chunked(amps, 2 * bh, threads, |_, chunk| {
        for_each_2q_base(chunk, bl, bh, |c, base| {
            let idx = [base, base | bb, base | ba, base | ba | bb];
            let olds = [c[idx[0]], c[idx[1]], c[idx[2]], c[idx[3]]];
            for (r, &i) in idx.iter().enumerate() {
                let mut acc = ZERO;
                for (col, &old) in olds.iter().enumerate() {
                    acc += m[r][col] * old;
                }
                c[i] = acc;
            }
        });
    });
}

/// Block size (in amplitudes) for cache-resident wall application:
/// `2^14` amplitudes = 256 KiB, sized to sit in L2.
const WALL_BLOCK: usize = 1 << 14;

/// Fused run of consecutive single-qubit gates (a "wall": the `H` and
/// `RX(2β)` layers of QAOA). Gates on distinct qubits commute, so the run
/// is reordered low-qubits-first and every gate whose pair stride fits in
/// [`WALL_BLOCK`] is applied block-by-block while the block is
/// cache-resident — one memory sweep applies the whole low-qubit portion
/// of the wall instead of one sweep per gate. Repeated gates on one qubit
/// compose into a single dense 2×2 first.
#[derive(Debug, Default)]
struct WallAccumulator {
    /// Accumulated single-qubit ops, at most one per qubit.
    ops: Vec<Op>,
}

impl WallAccumulator {
    fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Merges a single-qubit op into the wall.
    ///
    /// # Panics
    ///
    /// Panics if the op is not single-qubit (callers dispatch on shape).
    fn push(&mut self, op: Op) {
        let bit = op.operand_bit().expect("wall ops are single-qubit");
        if let Some(e) = self.ops.iter_mut().find(|e| e.operand_bit() == Some(bit)) {
            *e = Op::Dense1 {
                bit,
                m: matmul2(&op.to_matrix2(), &e.to_matrix2()),
            };
        } else {
            self.ops.push(op);
        }
    }

    /// Applies the accumulated wall and clears it. No-op when empty.
    fn flush(&mut self, amps: &mut [Complex], threads: usize) {
        if self.ops.is_empty() {
            return;
        }
        if qtrace::enabled() {
            qtrace::global().observe("qsim/fused_wall_run_len", self.ops.len() as u64);
        }
        let block = WALL_BLOCK.min(amps.len());
        let is_low = |op: &Op| 2 * op.operand_bit().expect("wall ops are single-qubit") <= block;
        let n_low = self.ops.iter().filter(|op| is_low(op)).count();
        if n_low > 1 {
            // `amps.len()` is a power of two ≥ `block`, so blocks tile the
            // buffer exactly; each low op's coupled pairs stay inside a
            // block, so per-block serial application is exact.
            let ops = &self.ops;
            par::chunked(amps, block, threads, |_, chunk| {
                for blk in chunk.chunks_exact_mut(block) {
                    for op in ops.iter().filter(|op| is_low(op)) {
                        op.apply(blk, 1);
                    }
                }
            });
        } else {
            for op in self.ops.iter().filter(|op| is_low(op)) {
                op.apply(amps, threads);
            }
        }
        for op in self.ops.iter().filter(|op| !is_low(op)) {
            op.apply(amps, threads);
        }
        self.ops.clear();
    }
}

/// A group of two-qubit diagonal terms that share a phase pair and are
/// evaluated by *counting* rather than multiplying: per amplitude, count
/// how many pairs satisfy the group's predicate, then look the product up
/// in a precomputed power table.
#[derive(Debug)]
struct CountGroup {
    /// Two-bit operand masks, one per term.
    pair_masks: Vec<usize>,
    /// `table[c]` = accumulated phase when `c` pairs fire.
    table: Vec<Complex>,
}

/// Fused run of consecutive diagonal gates. Push terms, then [`flush`]
/// applies the whole run in one pass over the amplitude buffer.
///
/// [`flush`]: DiagAccumulator::flush
#[derive(Debug, Default)]
pub(crate) struct DiagAccumulator {
    /// Per-qubit merged `diag(z0, z1)` terms, keyed by bit mask.
    one_q: Vec<(usize, Complex, Complex)>,
    /// Canonicalized (low-bit-first key) two-qubit terms, merged per pair.
    two_q: Vec<(usize, usize, [Complex; 4])>,
}

impl DiagAccumulator {
    pub(crate) fn is_empty(&self) -> bool {
        self.one_q.is_empty() && self.two_q.is_empty()
    }

    /// Merges a diagonal op into the accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the op is not diagonal (callers check `is_diagonal`).
    pub(crate) fn push(&mut self, op: &Op) {
        match *op {
            Op::Identity => {}
            Op::Phase1 { bit, z0, z1 } => {
                if let Some(e) = self.one_q.iter_mut().find(|e| e.0 == bit) {
                    e.1 *= z0;
                    e.2 *= z1;
                } else {
                    self.one_q.push((bit, z0, z1));
                }
            }
            Op::Phase2 { ba, bb, phases } => {
                // Canonical operand order: key bit 1 = higher mask. A
                // reorder swaps the mixed entries (01 ↔ 10).
                let (ka, kb, ph) = if ba > bb {
                    (ba, bb, phases)
                } else {
                    (bb, ba, [phases[0], phases[2], phases[1], phases[3]])
                };
                if let Some(e) = self.two_q.iter_mut().find(|e| e.0 == ka && e.1 == kb) {
                    for (dst, src) in e.2.iter_mut().zip(ph) {
                        *dst *= src;
                    }
                } else {
                    self.two_q.push((ka, kb, ph));
                }
            }
            _ => panic!("cannot fuse a non-diagonal op"),
        }
    }

    /// Applies the accumulated run in a single pass and clears the
    /// accumulator. No-op when empty.
    pub(crate) fn flush(&mut self, amps: &mut [Complex], threads: usize) {
        if self.is_empty() {
            return;
        }
        if qtrace::enabled() {
            qtrace::global().observe(
                "qsim/fused_diag_run_len",
                (self.one_q.len() + self.two_q.len()) as u64,
            );
        }
        let one_q = std::mem::take(&mut self.one_q);
        let two_q = std::mem::take(&mut self.two_q);

        // Classify the two-qubit terms into counting groups.
        let mut parity: Vec<(Complex, Complex, Vec<usize>)> = Vec::new();
        let mut both: Vec<(Complex, Vec<usize>)> = Vec::new();
        let mut general: Vec<(usize, usize, [Complex; 4])> = Vec::new();
        let same_bits = |x: Complex, y: Complex| {
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()
        };
        for (ka, kb, ph) in two_q {
            let pm = ka | kb;
            if same_bits(ph[0], ph[3]) && same_bits(ph[1], ph[2]) {
                let (s, d) = (ph[0], ph[1]);
                if let Some(g) = parity
                    .iter_mut()
                    .find(|g| same_bits(g.0, s) && same_bits(g.1, d))
                {
                    g.2.push(pm);
                } else {
                    parity.push((s, d, vec![pm]));
                }
            } else if same_bits(ph[0], ONE) && same_bits(ph[1], ONE) && same_bits(ph[2], ONE) {
                let p = ph[3];
                if let Some(g) = both.iter_mut().find(|g| same_bits(g.0, p)) {
                    g.1.push(pm);
                } else {
                    both.push((p, vec![pm]));
                }
            } else {
                general.push((ka, kb, ph));
            }
        }
        let power_table = |lo: Complex, hi: Complex, k: usize| -> Vec<Complex> {
            (0..=k)
                .map(|c| lo.powu((k - c) as u32) * hi.powu(c as u32))
                .collect()
        };
        let parity_groups: Vec<CountGroup> = parity
            .into_iter()
            .map(|(s, d, pair_masks)| {
                let table = power_table(s, d, pair_masks.len());
                CountGroup { pair_masks, table }
            })
            .collect();
        let both_groups: Vec<CountGroup> = both
            .into_iter()
            .map(|(p, pair_masks)| {
                let table = power_table(ONE, p, pair_masks.len());
                CountGroup { pair_masks, table }
            })
            .collect();

        // The QAOA cost layer: one parity group, nothing else. Worth a
        // dedicated loop — it is the single hottest path in the engine.
        //
        // The count is maintained *incrementally*: stepping `idx → idx+1`
        // flips the trailing-ones run plus the carry bit, and toggling
        // bit `b` changes the odd-parity count by
        // `±(deg(b) − 2·popcount(idx ∩ partners(b)))` (every pair through
        // `b` flips its parity; pairs whose partner bit is set flip
        // odd→even, the rest even→odd). Amortized two bit-toggles per
        // increment, so the pass costs ~2 popcounts per amplitude
        // regardless of how many edges were fused — instead of one
        // popcount per edge per amplitude.
        if one_q.is_empty()
            && both_groups.is_empty()
            && general.is_empty()
            && parity_groups.len() == 1
        {
            let g = &parity_groups[0];
            // Below ~4 edges the plain popcount loop wins: the walk's
            // data-dependent trailing-zeros branch costs more than it
            // saves (compiled circuits flush 1–2-edge runs constantly).
            if g.pair_masks.len() < 4 {
                par::chunked(amps, 1, threads, |offset, chunk| {
                    for (i, a) in chunk.iter_mut().enumerate() {
                        let idx = offset + i;
                        let mut c = 0usize;
                        for &pm in &g.pair_masks {
                            c += ((idx & pm).count_ones() & 1) as usize;
                        }
                        *a *= g.table[c];
                    }
                });
                return;
            }
            let n_bits = amps.len().trailing_zeros() as usize;
            let mut deg = vec![0i64; n_bits];
            let mut partners = vec![0usize; n_bits];
            for &pm in &g.pair_masks {
                let a = pm.trailing_zeros() as usize;
                let b = (usize::BITS - 1 - pm.leading_zeros()) as usize;
                deg[a] += 1;
                deg[b] += 1;
                partners[a] |= 1 << b;
                partners[b] |= 1 << a;
            }
            par::chunked(amps, 1, threads, |offset, chunk| {
                // Exact count at the chunk start, then walk.
                let mut cur = offset;
                let mut c: i64 = g
                    .pair_masks
                    .iter()
                    .map(|&pm| i64::from((cur & pm).count_ones() & 1))
                    .sum();
                let (first, rest) = chunk.split_first_mut().expect("chunks are non-empty");
                *first *= g.table[c as usize];
                for a in rest {
                    let t = (cur + 1).trailing_zeros() as usize;
                    for b in 0..t {
                        cur ^= 1 << b;
                        c += 2 * (cur & partners[b]).count_ones() as i64 - deg[b];
                    }
                    cur |= 1 << t;
                    c += deg[t] - 2 * (cur & partners[t]).count_ones() as i64;
                    *a *= g.table[c as usize];
                }
            });
            return;
        }

        par::chunked(amps, 1, threads, |offset, chunk| {
            for (i, a) in chunk.iter_mut().enumerate() {
                let idx = offset + i;
                let mut z = ONE;
                for &(m, z0, z1) in &one_q {
                    z *= if idx & m == 0 { z0 } else { z1 };
                }
                for g in &parity_groups {
                    let mut c = 0usize;
                    for &pm in &g.pair_masks {
                        c += ((idx & pm).count_ones() & 1) as usize;
                    }
                    z *= g.table[c];
                }
                for g in &both_groups {
                    let mut c = 0usize;
                    for &pm in &g.pair_masks {
                        c += usize::from(idx & pm == pm);
                    }
                    z *= g.table[c];
                }
                for &(ka, kb, ph) in &general {
                    let key = (usize::from(idx & ka != 0) << 1) | usize::from(idx & kb != 0);
                    z *= ph[key];
                }
                *a *= z;
            }
        });
    }
}
