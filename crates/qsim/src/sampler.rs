//! Shot sampling from statevectors.
//!
//! QAOA evaluates its cost function over a finite number of samples
//! ("shots") from the circuit output (§II "QAOA Optimization Flow"); the
//! hardware experiments of §V-G use 40960 shots per circuit. This module
//! provides an efficient multi-shot sampler (cumulative distribution +
//! binary search) and the counts container shared by the noiseless and
//! noisy paths.

use std::collections::BTreeMap;

use rand::Rng;

use crate::StateVector;

/// Measurement outcome counts: basis state → number of shots.
pub type Counts = BTreeMap<usize, u64>;

/// Normalizes counts into a probability distribution over basis states.
///
/// Returns an empty vector when `counts` is empty; otherwise the vector has
/// `1 << num_qubits` entries.
pub fn counts_to_distribution(counts: &Counts, num_qubits: usize) -> Vec<f64> {
    let total: u64 = counts.values().sum();
    let mut dist = vec![0.0; 1usize << num_qubits];
    if total == 0 {
        return dist;
    }
    for (&state, &n) in counts {
        dist[state] = n as f64 / total as f64;
    }
    dist
}

/// Samples computational-basis measurement outcomes from a statevector.
///
/// Construction is `O(2^n)`; each shot is `O(n)` (binary search), so
/// sampling the paper's 40960 shots from a 15-qubit state is effectively
/// instant.
#[derive(Debug, Clone)]
pub struct Sampler {
    cumulative: Vec<f64>,
}

impl Sampler {
    /// Builds a sampler over the Born-rule distribution of `state`.
    pub fn new(state: &StateVector) -> Self {
        let mut sampler = Sampler {
            cumulative: Vec::with_capacity(state.amplitudes().len()),
        };
        sampler.rebuild(state);
        sampler
    }

    /// Rebuilds the sampler over a new state, reusing the table
    /// allocation — the resampling counterpart of [`Sampler::new`] for
    /// trajectory loops.
    pub fn rebuild(&mut self, state: &StateVector) {
        state.probabilities_into(&mut self.cumulative);
        let mut acc = 0.0;
        for c in &mut self.cumulative {
            acc += *c;
            *c = acc;
        }
    }

    /// Draws one basis state.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty state");
        let x: f64 = rng.gen_range(0.0..total);
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }

    /// Draws `shots` basis states and tallies them.
    pub fn sample_counts<R: Rng + ?Sized>(&self, shots: u64, rng: &mut R) -> Counts {
        let mut counts = Counts::new();
        for _ in 0..shots {
            *counts.entry(self.sample(rng)).or_insert(0) += 1;
        }
        counts
    }
}

/// Applies independent per-qubit readout bit-flips to sampled counts.
///
/// `flip_probability(q)` is the readout error rate of physical qubit `q`.
/// This models the measurement errors of real devices on top of either
/// noiseless or trajectory sampling.
pub fn apply_readout_error<R, F>(
    counts: &Counts,
    num_qubits: usize,
    mut flip_probability: F,
    rng: &mut R,
) -> Counts
where
    R: Rng + ?Sized,
    F: FnMut(usize) -> f64,
{
    let flip_p: Vec<f64> = (0..num_qubits).map(&mut flip_probability).collect();
    let mut out = Counts::new();
    for (&state, &n) in counts {
        for _ in 0..n {
            let mut s = state;
            for (q, &p) in flip_p.iter().enumerate() {
                if p > 0.0 && rng.gen_bool(p) {
                    s ^= 1usize << q;
                }
            }
            *out.entry(s).or_insert(0) += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_state_always_samples_itself() {
        let mut c = Circuit::new(3);
        c.x(1);
        let sv = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(0);
        let counts = Sampler::new(&sv).sample_counts(100, &mut rng);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&0b010], 100);
    }

    #[test]
    fn bell_state_sampling_is_balanced() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let sv = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(3);
        let counts = Sampler::new(&sv).sample_counts(10_000, &mut rng);
        let n00 = counts.get(&0b00).copied().unwrap_or(0) as f64;
        let n11 = counts.get(&0b11).copied().unwrap_or(0) as f64;
        assert_eq!(n00 + n11, 10_000.0);
        assert!((n00 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn distribution_normalizes() {
        let counts = Counts::from([(0b00, 30), (0b11, 70)]);
        let d = counts_to_distribution(&counts, 2);
        assert_eq!(d.len(), 4);
        assert!((d[0] - 0.3).abs() < 1e-12);
        assert!((d[3] - 0.7).abs() < 1e-12);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_give_zero_distribution() {
        let d = counts_to_distribution(&Counts::new(), 2);
        assert_eq!(d, vec![0.0; 4]);
    }

    #[test]
    fn readout_error_zero_is_identity() {
        let counts = Counts::from([(5, 10), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = apply_readout_error(&counts, 3, |_| 0.0, &mut rng);
        assert_eq!(out, counts);
    }

    #[test]
    fn readout_error_one_flips_everything() {
        let counts = Counts::from([(0b000, 10)]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = apply_readout_error(&counts, 3, |_| 1.0, &mut rng);
        assert_eq!(out, Counts::from([(0b111, 10)]));
    }

    #[test]
    fn readout_error_rate_statistics() {
        let counts = Counts::from([(0b0, 20_000)]);
        let mut rng = StdRng::seed_from_u64(9);
        let out = apply_readout_error(&counts, 1, |_| 0.25, &mut rng);
        let flipped = out.get(&1).copied().unwrap_or(0) as f64 / 20_000.0;
        assert!((flipped - 0.25).abs() < 0.02, "flip rate {flipped}");
    }

    #[test]
    fn sampler_matches_probabilities() {
        let mut c = Circuit::new(2);
        c.rx(1.0, 0);
        c.ry(0.7, 1);
        let sv = StateVector::from_circuit(&c);
        let probs = sv.probabilities();
        let mut rng = StdRng::seed_from_u64(17);
        let counts = Sampler::new(&sv).sample_counts(50_000, &mut rng);
        for (state, &p) in probs.iter().enumerate() {
            let freq = counts.get(&state).copied().unwrap_or(0) as f64 / 50_000.0;
            assert!((freq - p).abs() < 0.02, "state {state}: {freq} vs {p}");
        }
    }
}
