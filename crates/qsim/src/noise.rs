//! Stochastic-Pauli trajectory noise — the stand-in for real-hardware
//! execution (see the crate docs and DESIGN.md §4 for the substitution
//! rationale).

use rand::Rng;

use qcircuit::layers::asap_layers;
use qcircuit::{Circuit, Gate, Instruction};
use qhw::Calibration;

use crate::kernels::FusedApplier;
use crate::sampler::{apply_readout_error, Counts, Sampler};
use crate::{SimOptions, StateVector};

/// Error parameters for trajectory simulation of a *physical* circuit
/// (i.e. one whose qubit indices are hardware qubits so calibration data
/// applies directly).
///
/// Per trajectory:
/// * each two-qubit gate on coupling `(u, v)` is followed, with probability
///   equal to the calibrated CNOT error, by a uniformly random non-identity
///   two-qubit Pauli on its operands;
/// * each single-qubit gate is followed, with the calibrated single-qubit
///   error probability, by a uniformly random Pauli on its qubit;
/// * after each concurrency layer, every *idle* qubit depolarizes with
///   probability [`NoiseModel::idle_error_per_layer`] — this is how circuit
///   depth (decoherence time) degrades fidelity independent of gate count;
/// * measured bits flip with the calibrated readout error.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    calibration: Calibration,
    idle_error_per_layer: f64,
}

impl NoiseModel {
    /// Builds a noise model from device calibration with the default idle
    /// (decoherence) error of 0.1% per layer per qubit.
    pub fn new(calibration: Calibration) -> Self {
        NoiseModel {
            calibration,
            idle_error_per_layer: 1e-3,
        }
    }

    /// Sets the per-layer idle depolarization probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_idle_error(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "idle error must be a probability, got {p}"
        );
        self.idle_error_per_layer = p;
        self
    }

    /// The per-layer idle depolarization probability.
    pub fn idle_error_per_layer(&self) -> f64 {
        self.idle_error_per_layer
    }

    /// The underlying calibration data.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The gate-error probability for one instruction.
    fn gate_error(&self, instr: &Instruction) -> f64 {
        match instr.gate() {
            Gate::Measure | Gate::Id => 0.0,
            g if g.arity() == 2 => self.calibration.cnot_error(instr.q0(), instr.q1()),
            _ => self.calibration.single_qubit_error(instr.q0()),
        }
    }
}

/// Monte-Carlo trajectory simulator over a noise model.
///
/// Running `t` trajectories and drawing `shots / t` samples from each
/// approximates sampling the true noisy density matrix with `t`-resolution
/// on the error-pattern mixture; `t = 100`–`300` reproduces hardware-like
/// behaviour for the paper's 12–15 qubit ARG instances at a small fraction
/// of the cost of per-shot trajectories.
#[derive(Debug, Clone)]
pub struct TrajectorySimulator {
    model: NoiseModel,
    options: SimOptions,
}

impl TrajectorySimulator {
    /// Creates a simulator over `model` with default engine options.
    pub fn new(model: NoiseModel) -> Self {
        Self::with_options(model, SimOptions::default())
    }

    /// Creates a simulator over `model` with explicit engine options
    /// (thread count, diagonal fusion) for the underlying statevector
    /// updates.
    pub fn with_options(model: NoiseModel, options: SimOptions) -> Self {
        TrajectorySimulator { model, options }
    }

    /// The noise model in use.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// The engine options in use.
    pub fn options(&self) -> &SimOptions {
        &self.options
    }

    /// Runs one noisy trajectory of `circuit`, returning the (pure) final
    /// state of that trajectory.
    ///
    /// # Panics
    ///
    /// Panics if the circuit uses qubits outside the calibration, or
    /// applies a two-qubit gate across an uncalibrated (uncoupled) pair —
    /// routed circuits never do.
    pub fn run_trajectory<R: Rng + ?Sized>(&self, circuit: &Circuit, rng: &mut R) -> StateVector {
        let mut sv = StateVector::new(circuit.num_qubits());
        self.run_trajectory_into(circuit, rng, &mut sv);
        sv
    }

    /// [`TrajectorySimulator::run_trajectory`] into a caller-provided
    /// state, reusing its allocation across trajectories. The state is
    /// reset to `|0...0⟩` first.
    ///
    /// # Panics
    ///
    /// Panics if `sv` has fewer qubits than the circuit, plus the
    /// conditions of [`TrajectorySimulator::run_trajectory`].
    pub fn run_trajectory_into<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
        sv: &mut StateVector,
    ) {
        let mut busy = vec![false; circuit.num_qubits()];
        self.run_layers(&asap_layers(circuit), &mut busy, sv, rng);
    }

    /// The trajectory inner loop over precomputed concurrency layers, with
    /// all buffers (state, busy flags) owned by the caller so repeated
    /// trajectories allocate nothing.
    fn run_layers<R: Rng + ?Sized>(
        &self,
        layers: &[Vec<Instruction>],
        busy: &mut [bool],
        sv: &mut StateVector,
        rng: &mut R,
    ) {
        sv.reset();
        let mut fused = FusedApplier::new(&self.options, sv.num_qubits());
        for layer in layers {
            busy.fill(false);
            for instr in layer {
                for q in instr.qubit_vec() {
                    busy[q] = true;
                }
                if instr.gate().is_unitary() {
                    fused.apply(sv.amps_mut(), instr);
                }
                let p_err = self.model.gate_error(instr);
                if p_err > 0.0 && rng.gen_bool(p_err) {
                    fused.flush(sv.amps_mut());
                    inject_pauli(sv, instr, rng);
                }
            }
            let p_idle = self.model.idle_error_per_layer;
            if p_idle > 0.0 {
                for (q, &b) in busy.iter().enumerate() {
                    if !b && rng.gen_bool(p_idle) {
                        fused.flush(sv.amps_mut());
                        apply_random_pauli(sv, q, rng);
                    }
                }
            }
        }
        fused.flush(sv.amps_mut());
    }

    /// Samples `shots` noisy measurement outcomes using `trajectories`
    /// independent trajectories (shots are split evenly; the remainder goes
    /// to the first trajectories). Readout error is applied to every shot.
    ///
    /// One statevector, one sampler table and one layer schedule are reused
    /// across all trajectories — per-trajectory work allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `trajectories == 0` or on the conditions of
    /// [`TrajectorySimulator::run_trajectory`].
    pub fn sample<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        shots: u64,
        trajectories: u32,
        rng: &mut R,
    ) -> Counts {
        assert!(trajectories > 0, "at least one trajectory is required");
        let n = circuit.num_qubits();
        let base = shots / u64::from(trajectories);
        let remainder = shots % u64::from(trajectories);
        let layers = asap_layers(circuit);
        let mut busy = vec![false; n];
        let mut sv = StateVector::new(n);
        let mut sampler = Sampler::new(&sv);
        let mut counts = Counts::new();
        for t in 0..u64::from(trajectories) {
            let this_shots = base + u64::from(t < remainder);
            if this_shots == 0 {
                continue;
            }
            self.run_layers(&layers, &mut busy, &mut sv, rng);
            sampler.rebuild(&sv);
            for _ in 0..this_shots {
                *counts.entry(sampler.sample(rng)).or_insert(0) += 1;
            }
        }
        apply_readout_error(&counts, n, |q| self.model.calibration.readout_error(q), rng)
    }

    /// Mean trajectory fidelity `E[|⟨ψ_traj|ideal⟩|²]` over `trajectories`
    /// runs — the measured counterpart of the estimated success
    /// probability (ESP) reported by the compilation metrics.
    ///
    /// # Panics
    ///
    /// Panics if `trajectories == 0`, the qubit counts differ, or on the
    /// conditions of [`TrajectorySimulator::run_trajectory`].
    pub fn mean_fidelity<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        ideal: &StateVector,
        trajectories: u32,
        rng: &mut R,
    ) -> f64 {
        assert!(trajectories > 0, "at least one trajectory is required");
        let n = circuit.num_qubits();
        let layers = asap_layers(circuit);
        let mut busy = vec![false; n];
        let mut sv = StateVector::new(n);
        let mut total = 0.0;
        for _ in 0..trajectories {
            self.run_layers(&layers, &mut busy, &mut sv, rng);
            total += sv.fidelity(ideal);
        }
        total / f64::from(trajectories)
    }
}

fn inject_pauli<R: Rng + ?Sized>(sv: &mut StateVector, instr: &Instruction, rng: &mut R) {
    if instr.gate().arity() == 2 {
        // uniformly random non-identity two-qubit Pauli: 15 options
        let choice = rng.gen_range(1..16u8);
        let (pa, pb) = (choice / 4, choice % 4);
        apply_pauli_index(sv, instr.q0(), pa);
        apply_pauli_index(sv, instr.q1(), pb);
    } else {
        apply_random_pauli(sv, instr.q0(), rng);
    }
}

fn apply_random_pauli<R: Rng + ?Sized>(sv: &mut StateVector, q: usize, rng: &mut R) {
    apply_pauli_index(sv, q, rng.gen_range(1..4u8));
}

fn apply_pauli_index(sv: &mut StateVector, q: usize, which: u8) {
    let gate = match which {
        0 => return,
        1 => Gate::X,
        2 => Gate::Y,
        _ => Gate::Z,
    };
    sv.apply(&Instruction::one(gate, q));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qhw::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell_on(topology: &Topology) -> Circuit {
        let mut c = Circuit::new(topology.num_qubits());
        c.h(0);
        c.cx(0, 1);
        c.measure(0);
        c.measure(1);
        c
    }

    #[test]
    fn zero_noise_reproduces_ideal_distribution() {
        let topo = Topology::linear(2);
        let cal = Calibration::uniform(&topo, 0.0, 0.0, 0.0);
        // Calibration clamps to MIN_ERROR=1e-6 — effectively noiseless.
        let sim = TrajectorySimulator::new(NoiseModel::new(cal).with_idle_error(0.0));
        let mut rng = StdRng::seed_from_u64(4);
        let counts = sim.sample(&bell_on(&topo), 4000, 10, &mut rng);
        let p00 = counts.get(&0b00).copied().unwrap_or(0) as f64 / 4000.0;
        let p11 = counts.get(&0b11).copied().unwrap_or(0) as f64 / 4000.0;
        assert!(p00 + p11 > 0.99, "p00+p11 = {}", p00 + p11);
        assert!((p00 - 0.5).abs() < 0.05);
    }

    #[test]
    fn heavy_noise_degrades_fidelity() {
        let topo = Topology::linear(2);
        let cal = Calibration::uniform(&topo, 0.4, 0.2, 0.1);
        let sim = TrajectorySimulator::new(NoiseModel::new(cal));
        let mut rng = StdRng::seed_from_u64(4);
        let counts = sim.sample(&bell_on(&topo), 4000, 50, &mut rng);
        let good = (counts.get(&0b00).copied().unwrap_or(0)
            + counts.get(&0b11).copied().unwrap_or(0)) as f64
            / 4000.0;
        assert!(good < 0.95, "noise had no effect: {good}");
    }

    #[test]
    fn deeper_circuits_lose_more_fidelity() {
        // Same gate count per layer, increasing idle time: a circuit with
        // long idle stretches must degrade more than a compact one.
        let topo = Topology::linear(4);
        let cal = Calibration::uniform(&topo, 1e-6, 1e-6, 1e-6);
        let sim = TrajectorySimulator::new(NoiseModel::new(cal).with_idle_error(0.05));
        let mut shallow = Circuit::new(4);
        for q in 0..4 {
            shallow.h(q); // depth 1, nobody idle
        }
        // `deep` applies the same Hadamards plus a serial chain of
        // self-cancelling CNOTs, leaving qubits 2 and 3 idle for many
        // layers.
        let mut deep = Circuit::new(4);
        deep.h(0);
        deep.h(1);
        deep.h(2);
        deep.h(3);
        for _ in 0..5 {
            deep.cx(0, 1);
            deep.cx(0, 1);
        }
        let ideal_shallow = StateVector::from_circuit(&shallow);
        let ideal_deep = StateVector::from_circuit(&deep);
        let mut rng = StdRng::seed_from_u64(11);
        let runs = 200;
        let mut fid_shallow = 0.0;
        let mut fid_deep = 0.0;
        for _ in 0..runs {
            fid_shallow += sim
                .run_trajectory(&shallow, &mut rng)
                .fidelity(&ideal_shallow);
            fid_deep += sim.run_trajectory(&deep, &mut rng).fidelity(&ideal_deep);
        }
        assert!(
            fid_deep < fid_shallow,
            "deep {fid_deep} should be below shallow {fid_shallow}"
        );
    }

    #[test]
    fn error_rate_scales_with_gate_count() {
        let topo = Topology::linear(2);
        let cal = Calibration::uniform(&topo, 0.05, 1e-6, 1e-6);
        let sim = TrajectorySimulator::new(NoiseModel::new(cal).with_idle_error(0.0));
        let fidelity_after = |n_pairs: usize| {
            let mut c = Circuit::new(2);
            for _ in 0..n_pairs {
                c.cx(0, 1);
                c.cx(0, 1);
            }
            let ideal = StateVector::from_circuit(&c);
            let mut rng = StdRng::seed_from_u64(2);
            let mut fid = 0.0;
            let runs = 300;
            for _ in 0..runs {
                fid += sim.run_trajectory(&c, &mut rng).fidelity(&ideal);
            }
            fid / runs as f64
        };
        let f2 = fidelity_after(1);
        let f20 = fidelity_after(10);
        assert!(
            f20 < f2,
            "more gates must mean lower fidelity: {f20} vs {f2}"
        );
        // Rough success-probability prediction: 0.95^2 vs 0.95^20.
        assert!(f2 > 0.8 && f20 < 0.55, "f2={f2}, f20={f20}");
    }

    #[test]
    #[should_panic]
    fn zero_trajectories_panics() {
        let topo = Topology::linear(2);
        let cal = Calibration::uniform(&topo, 0.01, 0.001, 0.01);
        let sim = TrajectorySimulator::new(NoiseModel::new(cal));
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sim.sample(&bell_on(&topo), 10, 0, &mut rng);
    }

    #[test]
    fn with_idle_error_validates() {
        let topo = Topology::linear(2);
        let cal = Calibration::uniform(&topo, 0.01, 0.001, 0.01);
        let m = NoiseModel::new(cal).with_idle_error(0.2);
        assert_eq!(m.idle_error_per_layer(), 0.2);
    }
}
