use crate::kernels::{FusedApplier, Op};
use crate::{SimError, SimOptions};
use qcircuit::math::{Complex, Matrix2, Matrix4, ONE, ZERO};
use qcircuit::{Circuit, CircuitError, Instruction, ParamValues};

/// Hard cap on the dense statevector width: `2^28` amplitudes is 4 GiB,
/// the largest register the representation supports at all.
pub const MAX_QUBITS: usize = 28;

/// A dense statevector over `n` qubits (qubit 0 is the least-significant
/// bit of the basis index).
///
/// The hard limit is [`MAX_QUBITS`] (28) qubits; ~22 qubits is the
/// practical ceiling on a laptop. The paper's largest instances use 36
/// qubits for *compilation* but only 12–15 for *execution*, which fits
/// comfortably.
///
/// Gates are applied through specialized in-place kernels (see
/// `kernels.rs`): diagonal gates are phase multiplications, `CNOT`/`SWAP`
/// are index swaps, the QAOA mixers use structured real rotations, and
/// consecutive diagonal gates fuse into a single amplitude pass. All of
/// this is tunable through [`SimOptions`] via the `*_with` entry points;
/// the plain entry points use [`SimOptions::default`].
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0...0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 28` (the dense vector would not fit in
    /// memory). Use [`StateVector::try_new`] to get an error instead.
    pub fn new(num_qubits: usize) -> Self {
        match Self::try_new(num_qubits) {
            Ok(sv) => sv,
            Err(e) => panic!("statevector too large: {e}"),
        }
    }

    /// The all-zeros state, or [`SimError::RegisterTooLarge`] when the
    /// register exceeds [`MAX_QUBITS`].
    pub fn try_new(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits > MAX_QUBITS {
            return Err(SimError::RegisterTooLarge {
                qubits: num_qubits,
                limit: MAX_QUBITS,
                representation: "statevector",
            });
        }
        let mut amps = vec![ZERO; 1usize << num_qubits];
        amps[0] = ONE;
        qtrace::global().gauge_max("qsim/peak_live_amplitudes", amps.len() as u64);
        Ok(StateVector { num_qubits, amps })
    }

    /// Resets to `|0...0⟩` in place, reusing the allocation.
    pub fn reset(&mut self) {
        self.amps.fill(ZERO);
        self.amps[0] = ONE;
    }

    /// Runs every unitary gate of `circuit` on a fresh `|0...0⟩` state.
    /// Measurements are ignored (sampling is a separate step — see
    /// [`crate::Sampler`]).
    pub fn from_circuit(circuit: &Circuit) -> Self {
        Self::from_circuit_with(circuit, &SimOptions::default())
    }

    /// [`StateVector::from_circuit`] with explicit engine options.
    pub fn from_circuit_with(circuit: &Circuit, opts: &SimOptions) -> Self {
        let mut sv = StateVector::new(circuit.num_qubits());
        sv.apply_circuit_with(circuit, opts);
        sv
    }

    /// [`StateVector::from_circuit`] that *rejects* parametric circuits
    /// with a structured error instead of panicking mid-kernel: the
    /// bound-only entry of the compile-once/rebind-many flow.
    ///
    /// # Errors
    ///
    /// [`SimError::UnboundCircuit`] if any instruction carries a symbolic
    /// angle, [`SimError::RegisterTooLarge`] if the register does not fit.
    pub fn try_from_bound(circuit: &Circuit) -> Result<Self, SimError> {
        Self::try_from_bound_with(circuit, &SimOptions::default())
    }

    /// [`StateVector::try_from_bound`] with explicit engine options.
    pub fn try_from_bound_with(circuit: &Circuit, opts: &SimOptions) -> Result<Self, SimError> {
        if let Some(instr) = circuit.iter().find(|i| i.gate().is_parametric()) {
            return Err(SimError::UnboundCircuit {
                gate: instr.gate().name(),
            });
        }
        let mut sv = StateVector::try_new(circuit.num_qubits())?;
        sv.apply_circuit_with(circuit, opts);
        Ok(sv)
    }

    /// Binds parameter values into a parametric circuit and simulates the
    /// bound result in one call. The binding is a per-gate angle
    /// substitution; the simulation then runs entirely on the bound fast
    /// path (fused-diagonal kernels included).
    ///
    /// # Errors
    ///
    /// [`SimError::ParamMismatch`] when `values` does not cover the
    /// circuit's parameters, [`SimError::RegisterTooLarge`] if the
    /// register does not fit.
    pub fn bind_and_simulate(circuit: &Circuit, values: &ParamValues) -> Result<Self, SimError> {
        Self::bind_and_simulate_with(circuit, values, &SimOptions::default())
    }

    /// [`StateVector::bind_and_simulate`] with explicit engine options.
    pub fn bind_and_simulate_with(
        circuit: &Circuit,
        values: &ParamValues,
        opts: &SimOptions,
    ) -> Result<Self, SimError> {
        let bound = circuit.bind(values).map_err(|e| match e {
            CircuitError::UnboundParameter { param, provided } => SimError::ParamMismatch {
                expected: param as usize + 1,
                found: provided,
            },
            CircuitError::ParamCountMismatch { expected, found } => {
                SimError::ParamMismatch { expected, found }
            }
            // bind only emits the two parameter errors above
            _ => SimError::ParamMismatch {
                expected: circuit.num_params(),
                found: values.len(),
            },
        })?;
        Self::try_from_bound_with(&bound, opts)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitudes, indexed by basis state.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Applies every unitary gate of `circuit` in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        self.apply_circuit_with(circuit, &SimOptions::default());
    }

    /// [`StateVector::apply_circuit`] with explicit engine options:
    /// consecutive diagonal gates are fused into single passes (when
    /// `opts.fused_diagonals`) and every pass is chunked over
    /// `opts.effective_threads(n)` scoped workers.
    ///
    /// Results are bit-for-bit identical for every thread count, and agree
    /// with gate-by-gate application to ~1e-15 per amplitude when fusion
    /// reassociates phase products.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit_with(&mut self, circuit: &Circuit, opts: &SimOptions) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit acts on {} qubits but state has {}",
            circuit.num_qubits(),
            self.num_qubits
        );
        let mut fused = FusedApplier::new(opts, self.num_qubits);
        for instr in circuit.iter().filter(|i| i.gate().is_unitary()) {
            fused.apply(&mut self.amps, instr);
        }
        fused.flush(&mut self.amps);
    }

    /// Raw mutable amplitude access for the crate-internal streaming
    /// appliers (trajectory simulation).
    pub(crate) fn amps_mut(&mut self) -> &mut [Complex] {
        &mut self.amps
    }

    /// Applies one unitary instruction.
    ///
    /// # Panics
    ///
    /// Panics on measurement instructions or out-of-range operands.
    pub fn apply(&mut self, instr: &Instruction) {
        self.apply_with(instr, &SimOptions::default());
    }

    /// [`StateVector::apply`] with explicit engine options.
    ///
    /// # Panics
    ///
    /// Panics on measurement instructions or out-of-range operands.
    pub fn apply_with(&mut self, instr: &Instruction, opts: &SimOptions) {
        assert!(
            instr.gate().is_unitary(),
            "cannot apply measurement as a unitary"
        );
        self.assert_operands(instr);
        let threads = opts.effective_threads(self.num_qubits);
        Op::from_instruction(instr).apply(&mut self.amps, threads);
    }

    fn assert_operands(&self, instr: &Instruction) {
        let arity = instr.gate().arity();
        assert!(instr.q0() < self.num_qubits, "qubit out of range");
        if arity == 2 {
            assert!(instr.q1() < self.num_qubits, "qubit out of range");
            assert_ne!(
                instr.q0(),
                instr.q1(),
                "two-qubit gate on duplicate operand"
            );
        }
    }

    /// Applies an arbitrary 2×2 unitary on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q(&mut self, m: &Matrix2, q: usize) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        Op::Dense1 { bit: 1 << q, m: *m }.apply(&mut self.amps, 1);
    }

    /// Applies an arbitrary 4×4 unitary on qubits `(a, b)` where `a` is the
    /// more-significant matrix index (matching `Gate::matrix4`).
    ///
    /// # Panics
    ///
    /// Panics if operands are out of range or equal.
    pub fn apply_2q(&mut self, m: &Matrix4, a: usize, b: usize) {
        assert!(
            a < self.num_qubits && b < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(a, b, "two-qubit gate on duplicate operand");
        Op::Dense2 {
            ba: 1 << a,
            bb: 1 << b,
            m: *m,
        }
        .apply(&mut self.amps, 1);
    }

    /// Born-rule probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Writes the Born-rule probabilities into `out`, reusing its
    /// allocation (cleared first). The allocation-free counterpart of
    /// [`StateVector::probabilities`] for resampling loops.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.amps.iter().map(|a| a.norm_sqr()));
    }

    /// The squared norm of the state (1.0 up to floating-point error for
    /// any circuit of unitary gates).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Expectation value `⟨ψ| D |ψ⟩` of a diagonal observable given by
    /// `value(basis_state)` — e.g. a MaxCut cost function.
    pub fn expectation_diagonal<F: Fn(usize) -> f64>(&self, value: F) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .map(|(idx, a)| a.norm_sqr() * value(idx))
            .sum()
    }

    /// Projectively measures qubit `q` in the computational basis,
    /// collapsing the state and returning the observed bit.
    ///
    /// The Born-rule outcome is drawn from `rng`; afterwards the state is
    /// renormalized with qubit `q` fixed to the outcome. Mid-circuit
    /// measurement is not used by the QAOA pipeline (which defers all
    /// measurement to sampling) but completes the simulator for general
    /// workloads.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or the state has zero norm.
    pub fn measure_qubit<R: rand::Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let bit = 1usize << q;
        let p_one: f64 = self
            .amps
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        let norm = self.norm_sqr();
        assert!(norm > 1e-12, "cannot measure a zero-norm state");
        let outcome = rng.gen_bool((p_one / norm).clamp(0.0, 1.0));
        let keep_mask_set = outcome;
        let scale = 1.0
            / if outcome { p_one } else { norm - p_one }
                .max(f64::MIN_POSITIVE)
                .sqrt();
        for (idx, a) in self.amps.iter_mut().enumerate() {
            if (idx & bit != 0) == keep_mask_set {
                *a = a.scale(scale);
            } else {
                *a = ZERO;
            }
        }
        outcome
    }

    /// The fidelity `|⟨ψ|φ⟩|²` with another state.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        let mut inner = ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            inner += a.conj() * *b;
        }
        inner.norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Gate;
    use std::f64::consts::PI;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn initial_state_is_all_zeros() {
        let sv = StateVector::new(3);
        let p = sv.probabilities();
        assert_close(p[0], 1.0);
        assert_close(p.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn try_new_rejects_oversized_registers() {
        let err = StateVector::try_new(MAX_QUBITS + 1).unwrap_err();
        assert_eq!(
            err,
            SimError::RegisterTooLarge {
                qubits: MAX_QUBITS + 1,
                limit: MAX_QUBITS,
                representation: "statevector",
            }
        );
        assert!(StateVector::try_new(3).is_ok());
    }

    #[test]
    #[should_panic(expected = "statevector too large")]
    fn new_panics_on_oversized_register() {
        let _ = StateVector::new(MAX_QUBITS + 1);
    }

    #[test]
    fn try_from_bound_rejects_parametric_circuits() {
        let mut c = Circuit::new(2);
        let gamma = c.declare_param("gamma");
        c.h(0);
        c.rzz(qcircuit::Angle::sym(gamma), 0, 1);
        assert_eq!(
            StateVector::try_from_bound(&c).unwrap_err(),
            SimError::UnboundCircuit { gate: "rzz" }
        );
        // the bound form is accepted
        let bound = c.bind(&ParamValues::new(vec![0.4])).unwrap();
        assert!(StateVector::try_from_bound(&bound).is_ok());
    }

    #[test]
    fn bind_and_simulate_matches_manual_binding() {
        let mut c = Circuit::new(3);
        let gamma = c.declare_param("gamma");
        let beta = c.declare_param("beta");
        for q in 0..3 {
            c.h(q);
        }
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            c.rzz(qcircuit::Angle::sym(gamma).neg(), a, b);
        }
        for q in 0..3 {
            c.rx(qcircuit::Angle::sym(beta).scaled(2.0), q);
        }
        let values = ParamValues::new(vec![0.7, 0.4]);
        let via_entry = StateVector::bind_and_simulate(&c, &values).unwrap();
        let via_manual = StateVector::from_circuit(&c.bind(&values).unwrap());
        assert_eq!(via_entry, via_manual);

        // wrong arity surfaces as a structured error
        assert_eq!(
            StateVector::bind_and_simulate(&c, &ParamValues::new(vec![0.7])).unwrap_err(),
            SimError::ParamMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        let mut sv = StateVector::from_circuit(&c);
        sv.reset();
        assert_eq!(sv, StateVector::new(3));
    }

    #[test]
    fn probabilities_into_matches_probabilities() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.rzz(0.4, 0, 2);
        c.rx(0.9, 1);
        let sv = StateVector::from_circuit(&c);
        let mut buf = vec![99.0; 2]; // wrong size and content on purpose
        sv.probabilities_into(&mut buf);
        assert_eq!(buf, sv.probabilities());
    }

    #[test]
    fn x_flips() {
        let mut c = Circuit::new(2);
        c.x(1);
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.probabilities()[0b10], 1.0);
    }

    #[test]
    fn ghz_state() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        let sv = StateVector::from_circuit(&c);
        let p = sv.probabilities();
        assert_close(p[0b000], 0.5);
        assert_close(p[0b111], 0.5);
        assert_close(sv.norm_sqr(), 1.0);
    }

    #[test]
    fn fast_paths_match_generic_matrices() {
        // Apply each fast-path gate via `apply` and via the generic
        // matrix application; states must agree.
        let gates = [
            Instruction::two(Gate::Rzz((0.73).into()), 0, 2),
            Instruction::two(Gate::CPhase((1.1).into()), 2, 1),
            Instruction::two(Gate::Cz, 1, 0),
            Instruction::two(Gate::Cnot, 2, 0),
            Instruction::two(Gate::Swap, 0, 1),
            Instruction::one(Gate::Rz((0.41).into()), 1),
            Instruction::one(Gate::U1((-0.9).into()), 2),
            Instruction::one(Gate::Z, 0),
            Instruction::one(Gate::H, 2),
            Instruction::one(Gate::Rx((0.77).into()), 0),
            Instruction::one(Gate::Ry((-1.3).into()), 1),
            Instruction::one(Gate::Y, 2),
        ];
        // Prepare a non-trivial state first.
        let mut prep = Circuit::new(3);
        prep.h(0);
        prep.h(1);
        prep.h(2);
        prep.rx(0.3, 0);
        prep.ry(0.5, 1);
        for instr in gates {
            let mut fast = StateVector::from_circuit(&prep);
            fast.apply(&instr);
            let mut slow = StateVector::from_circuit(&prep);
            if instr.gate().arity() == 1 {
                slow.apply_1q(&instr.gate().matrix2(), instr.q0());
            } else {
                slow.apply_2q(&instr.gate().matrix4(), instr.q0(), instr.q1());
            }
            assert!(fast.fidelity(&slow) > 1.0 - 1e-10, "mismatch for {instr}");
        }
    }

    #[test]
    fn cnot_control_orientation() {
        // control=1, target=0: |10> -> |11>
        let mut c = Circuit::new(2);
        c.x(1);
        c.cx(1, 0);
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.probabilities()[0b11], 1.0);
        // control=0 (unset) leaves target alone
        let mut c2 = Circuit::new(2);
        c2.cx(1, 0);
        let sv2 = StateVector::from_circuit(&c2);
        assert_close(sv2.probabilities()[0b00], 1.0);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.swap(0, 1);
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.probabilities()[0b10], 1.0);
    }

    #[test]
    fn rzz_phases_by_parity() {
        // On |+>|+>, Rzz(π) followed by H⊗H maps to |11>.
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        c.rzz(PI, 0, 1);
        c.h(0);
        c.h(1);
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.probabilities()[0b11], 1.0);
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut c = Circuit::new(5);
        for _ in 0..100 {
            match rng.gen_range(0..5) {
                0 => c.h(rng.gen_range(0..5)),
                1 => c.rx(rng.gen_range(-3.0..3.0), rng.gen_range(0..5)),
                2 => c.rz(rng.gen_range(-3.0..3.0), rng.gen_range(0..5)),
                3 => {
                    let a = rng.gen_range(0..5);
                    let b = (a + rng.gen_range(1..5)) % 5;
                    c.cx(a, b);
                }
                _ => {
                    let a = rng.gen_range(0..5);
                    let b = (a + rng.gen_range(1..5)) % 5;
                    c.rzz(rng.gen_range(-3.0..3.0), a, b);
                }
            }
        }
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.norm_sqr(), 1.0);
    }

    #[test]
    fn fused_and_unfused_agree() {
        // A QAOA-shaped circuit with an interleaved CPhase/Cz mix so the
        // accumulator sees every diagonal class at once.
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)] {
            c.rzz(0.8, a, b);
        }
        c.cp(0.3, 1, 4);
        c.cz(2, 5);
        c.rz(0.7, 3);
        c.rzz(-0.2, 0, 5);
        for q in 0..6 {
            c.rx(0.6, q);
        }
        let fused = StateVector::from_circuit_with(&c, &SimOptions::default());
        let unfused =
            StateVector::from_circuit_with(&c, &SimOptions::default().with_fused_diagonals(false));
        for (a, b) in fused.amplitudes().iter().zip(unfused.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let mut c = Circuit::new(8);
        for q in 0..8 {
            c.h(q);
        }
        for (a, b) in [(0, 7), (1, 6), (2, 5), (3, 4), (0, 4)] {
            c.rzz(0.9, a, b);
        }
        c.cx(7, 0);
        c.swap(3, 7);
        for q in 0..8 {
            c.rx(0.7, q);
        }
        let serial = StateVector::from_circuit_with(&c, &SimOptions::serial());
        let threaded = StateVector::from_circuit_with(
            &c,
            &SimOptions::default()
                .with_threads(4)
                .with_crossover_qubits(0),
        );
        assert_eq!(serial, threaded, "threaded result must be bit-identical");
    }

    #[test]
    fn expectation_of_diagonal() {
        // |+>|0>: P(00)=P(01)=.5 ... value = number of set bits
        let mut c = Circuit::new(2);
        c.h(0);
        let sv = StateVector::from_circuit(&c);
        let e = sv.expectation_diagonal(|idx| idx.count_ones() as f64);
        assert_close(e, 0.5);
    }

    #[test]
    fn measurements_are_ignored_by_from_circuit() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure_all();
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.probabilities()[0], 0.5);
    }

    #[test]
    fn fidelity_of_orthogonal_states() {
        let mut a = Circuit::new(1);
        a.x(0);
        let sa = StateVector::from_circuit(&a);
        let sb = StateVector::new(1);
        assert_close(sa.fidelity(&sb), 0.0);
        assert_close(sa.fidelity(&sa.clone()), 1.0);
    }

    #[test]
    fn swap_equals_three_cnots() {
        let mut prep = Circuit::new(2);
        prep.h(0);
        prep.rx(0.7, 1);
        let mut c1 = prep.clone();
        c1.swap(0, 1);
        let mut c2 = prep.clone();
        c2.cx(0, 1);
        c2.cx(1, 0);
        c2.cx(0, 1);
        let s1 = StateVector::from_circuit(&c1);
        let s2 = StateVector::from_circuit(&c2);
        assert!(s1.fidelity(&s2) > 1.0 - 1e-10);
    }
}

#[cfg(test)]
mod measure_tests {
    use super::*;
    use qcircuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measuring_basis_state_is_deterministic() {
        let mut c = Circuit::new(2);
        c.x(1);
        let mut sv = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!sv.measure_qubit(0, &mut rng));
        assert!(sv.measure_qubit(1, &mut rng));
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_measurement_correlates() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut ones, trials) = (0, 200);
        for _ in 0..trials {
            let mut c = Circuit::new(2);
            c.h(0);
            c.cx(0, 1);
            let mut sv = StateVector::from_circuit(&c);
            let first = sv.measure_qubit(0, &mut rng);
            let second = sv.measure_qubit(1, &mut rng);
            assert_eq!(first, second, "Bell pair must correlate");
            ones += u32::from(first);
        }
        let frac = f64::from(ones) / trials as f64;
        assert!((frac - 0.5).abs() < 0.15, "outcome fraction {frac}");
    }

    #[test]
    fn collapse_renormalizes() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.h(1);
        c.h(2);
        let mut sv = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(9);
        let _ = sv.measure_qubit(1, &mut rng);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
        // Qubit 1 is now definite: all amplitude on one side.
        let p = sv.probabilities();
        let p_one: f64 = p
            .iter()
            .enumerate()
            .filter(|(i, _)| i & 2 != 0)
            .map(|(_, x)| x)
            .sum();
        assert!(p_one < 1e-12 || (p_one - 1.0).abs() < 1e-12);
    }
}
