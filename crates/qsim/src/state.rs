use qcircuit::math::{Complex, Matrix2, Matrix4, ONE, ZERO};
use qcircuit::{Circuit, Gate, Instruction};

/// A dense statevector over `n` qubits (qubit 0 is the least-significant
/// bit of the basis index).
///
/// Practical up to ~22 qubits on a laptop; the paper's largest instances
/// use 36 qubits for *compilation* but only 12–15 for *execution*, which
/// fits comfortably.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0...0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 28` (the dense vector would not fit in
    /// memory).
    pub fn new(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 28,
            "statevector too large: {num_qubits} qubits"
        );
        let mut amps = vec![ZERO; 1usize << num_qubits];
        amps[0] = ONE;
        StateVector { num_qubits, amps }
    }

    /// Runs every unitary gate of `circuit` on a fresh `|0...0⟩` state.
    /// Measurements are ignored (sampling is a separate step — see
    /// [`crate::Sampler`]).
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut sv = StateVector::new(circuit.num_qubits());
        sv.apply_circuit(circuit);
        sv
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitudes, indexed by basis state.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Applies every unitary gate of `circuit` in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit acts on {} qubits but state has {}",
            circuit.num_qubits(),
            self.num_qubits
        );
        for instr in circuit.iter().filter(|i| i.gate().is_unitary()) {
            self.apply(instr);
        }
    }

    /// Applies one unitary instruction.
    ///
    /// # Panics
    ///
    /// Panics on measurement instructions or out-of-range operands.
    pub fn apply(&mut self, instr: &Instruction) {
        assert!(
            instr.gate().is_unitary(),
            "cannot apply measurement as a unitary"
        );
        match instr.gate() {
            // Fast paths for the gates QAOA circuits are made of.
            Gate::Rzz(t) => self.apply_rzz(t, instr.q0(), instr.q1()),
            Gate::CPhase(l) => self.apply_cphase(l, instr.q0(), instr.q1()),
            Gate::Cz => self.apply_cphase(std::f64::consts::PI, instr.q0(), instr.q1()),
            Gate::Cnot => self.apply_cnot(instr.q0(), instr.q1()),
            Gate::Swap => self.apply_swap(instr.q0(), instr.q1()),
            Gate::Rz(t) => {
                self.apply_phase_pair(Complex::cis(-t / 2.0), Complex::cis(t / 2.0), instr.q0())
            }
            Gate::U1(l) => self.apply_phase_pair(ONE, Complex::cis(l), instr.q0()),
            Gate::Z => self.apply_phase_pair(ONE, -ONE, instr.q0()),
            Gate::Id => {}
            g if g.arity() == 1 => self.apply_1q(&g.matrix2(), instr.q0()),
            g => self.apply_2q(&g.matrix4(), instr.q0(), instr.q1()),
        }
    }

    /// Applies an arbitrary 2×2 unitary on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q(&mut self, m: &Matrix2, q: usize) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let bit = 1usize << q;
        for base in 0..self.amps.len() {
            if base & bit != 0 {
                continue;
            }
            let i0 = base;
            let i1 = base | bit;
            let a0 = self.amps[i0];
            let a1 = self.amps[i1];
            self.amps[i0] = m[0][0] * a0 + m[0][1] * a1;
            self.amps[i1] = m[1][0] * a0 + m[1][1] * a1;
        }
    }

    /// Applies an arbitrary 4×4 unitary on qubits `(a, b)` where `a` is the
    /// more-significant matrix index (matching [`Gate::matrix4`]).
    ///
    /// # Panics
    ///
    /// Panics if operands are out of range or equal.
    pub fn apply_2q(&mut self, m: &Matrix4, a: usize, b: usize) {
        assert!(
            a < self.num_qubits && b < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(a, b, "two-qubit gate on duplicate operand");
        let ba = 1usize << a;
        let bb = 1usize << b;
        for base in 0..self.amps.len() {
            if base & (ba | bb) != 0 {
                continue;
            }
            let idx = [base, base | bb, base | ba, base | ba | bb]; // 00,01,10,11
            let olds = [
                self.amps[idx[0]],
                self.amps[idx[1]],
                self.amps[idx[2]],
                self.amps[idx[3]],
            ];
            for (r, &i) in idx.iter().enumerate() {
                let mut acc = ZERO;
                for (c, &old) in olds.iter().enumerate() {
                    acc += m[r][c] * old;
                }
                self.amps[i] = acc;
            }
        }
    }

    fn apply_phase_pair(&mut self, on_zero: Complex, on_one: Complex, q: usize) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let bit = 1usize << q;
        for (idx, amp) in self.amps.iter_mut().enumerate() {
            *amp = *amp * if idx & bit == 0 { on_zero } else { on_one };
        }
    }

    fn apply_rzz(&mut self, theta: f64, a: usize, b: usize) {
        assert!(
            a < self.num_qubits && b < self.num_qubits,
            "qubit out of range"
        );
        let ba = 1usize << a;
        let bb = 1usize << b;
        let same = Complex::cis(-theta / 2.0);
        let diff = Complex::cis(theta / 2.0);
        for (idx, amp) in self.amps.iter_mut().enumerate() {
            let parity = ((idx & ba != 0) as u8) ^ ((idx & bb != 0) as u8);
            *amp = *amp * if parity == 0 { same } else { diff };
        }
    }

    fn apply_cphase(&mut self, lambda: f64, a: usize, b: usize) {
        assert!(
            a < self.num_qubits && b < self.num_qubits,
            "qubit out of range"
        );
        let mask = (1usize << a) | (1usize << b);
        let phase = Complex::cis(lambda);
        for (idx, amp) in self.amps.iter_mut().enumerate() {
            if idx & mask == mask {
                *amp = *amp * phase;
            }
        }
    }

    fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(
            control < self.num_qubits && target < self.num_qubits,
            "qubit out of range"
        );
        let bc = 1usize << control;
        let bt = 1usize << target;
        for base in 0..self.amps.len() {
            // visit each control-set pair once, with target bit clear
            if base & bc == 0 || base & bt != 0 {
                continue;
            }
            self.amps.swap(base, base | bt);
        }
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(
            a < self.num_qubits && b < self.num_qubits,
            "qubit out of range"
        );
        let ba = 1usize << a;
        let bb = 1usize << b;
        for base in 0..self.amps.len() {
            // swap |..a=1,b=0..> with |..a=0,b=1..>, visiting once
            if base & ba != 0 && base & bb == 0 {
                self.amps.swap(base, (base & !ba) | bb);
            }
        }
    }

    /// Born-rule probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The squared norm of the state (1.0 up to floating-point error for
    /// any circuit of unitary gates).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Expectation value `⟨ψ| D |ψ⟩` of a diagonal observable given by
    /// `value(basis_state)` — e.g. a MaxCut cost function.
    pub fn expectation_diagonal<F: Fn(usize) -> f64>(&self, value: F) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .map(|(idx, a)| a.norm_sqr() * value(idx))
            .sum()
    }

    /// Projectively measures qubit `q` in the computational basis,
    /// collapsing the state and returning the observed bit.
    ///
    /// The Born-rule outcome is drawn from `rng`; afterwards the state is
    /// renormalized with qubit `q` fixed to the outcome. Mid-circuit
    /// measurement is not used by the QAOA pipeline (which defers all
    /// measurement to sampling) but completes the simulator for general
    /// workloads.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or the state has zero norm.
    pub fn measure_qubit<R: rand::Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let bit = 1usize << q;
        let p_one: f64 = self
            .amps
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        let norm = self.norm_sqr();
        assert!(norm > 1e-12, "cannot measure a zero-norm state");
        let outcome = rng.gen_bool((p_one / norm).clamp(0.0, 1.0));
        let keep_mask_set = outcome;
        let scale = 1.0
            / if outcome { p_one } else { norm - p_one }
                .max(f64::MIN_POSITIVE)
                .sqrt();
        for (idx, a) in self.amps.iter_mut().enumerate() {
            if (idx & bit != 0) == keep_mask_set {
                *a = a.scale(scale);
            } else {
                *a = ZERO;
            }
        }
        outcome
    }

    /// The fidelity `|⟨ψ|φ⟩|²` with another state.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        let mut inner = ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            inner += a.conj() * *b;
        }
        inner.norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn initial_state_is_all_zeros() {
        let sv = StateVector::new(3);
        let p = sv.probabilities();
        assert_close(p[0], 1.0);
        assert_close(p.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn x_flips() {
        let mut c = Circuit::new(2);
        c.x(1);
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.probabilities()[0b10], 1.0);
    }

    #[test]
    fn ghz_state() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        let sv = StateVector::from_circuit(&c);
        let p = sv.probabilities();
        assert_close(p[0b000], 0.5);
        assert_close(p[0b111], 0.5);
        assert_close(sv.norm_sqr(), 1.0);
    }

    #[test]
    fn fast_paths_match_generic_matrices() {
        // Apply each fast-path gate via `apply` and via the generic
        // matrix application; states must agree.
        let gates = [
            Instruction::two(Gate::Rzz(0.73), 0, 2),
            Instruction::two(Gate::CPhase(1.1), 2, 1),
            Instruction::two(Gate::Cz, 1, 0),
            Instruction::two(Gate::Cnot, 2, 0),
            Instruction::two(Gate::Swap, 0, 1),
            Instruction::one(Gate::Rz(0.41), 1),
            Instruction::one(Gate::U1(-0.9), 2),
            Instruction::one(Gate::Z, 0),
        ];
        // Prepare a non-trivial state first.
        let mut prep = Circuit::new(3);
        prep.h(0);
        prep.h(1);
        prep.h(2);
        prep.rx(0.3, 0);
        prep.ry(0.5, 1);
        for instr in gates {
            let mut fast = StateVector::from_circuit(&prep);
            fast.apply(&instr);
            let mut slow = StateVector::from_circuit(&prep);
            if instr.gate().arity() == 1 {
                slow.apply_1q(&instr.gate().matrix2(), instr.q0());
            } else {
                slow.apply_2q(&instr.gate().matrix4(), instr.q0(), instr.q1());
            }
            assert!(fast.fidelity(&slow) > 1.0 - 1e-10, "mismatch for {instr}");
        }
    }

    #[test]
    fn cnot_control_orientation() {
        // control=1, target=0: |10> -> |11>
        let mut c = Circuit::new(2);
        c.x(1);
        c.cx(1, 0);
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.probabilities()[0b11], 1.0);
        // control=0 (unset) leaves target alone
        let mut c2 = Circuit::new(2);
        c2.cx(1, 0);
        let sv2 = StateVector::from_circuit(&c2);
        assert_close(sv2.probabilities()[0b00], 1.0);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.swap(0, 1);
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.probabilities()[0b10], 1.0);
    }

    #[test]
    fn rzz_phases_by_parity() {
        // On |+>|+>, Rzz(π) followed by H⊗H maps to |11>.
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        c.rzz(PI, 0, 1);
        c.h(0);
        c.h(1);
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.probabilities()[0b11], 1.0);
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut c = Circuit::new(5);
        for _ in 0..100 {
            match rng.gen_range(0..5) {
                0 => c.h(rng.gen_range(0..5)),
                1 => c.rx(rng.gen_range(-3.0..3.0), rng.gen_range(0..5)),
                2 => c.rz(rng.gen_range(-3.0..3.0), rng.gen_range(0..5)),
                3 => {
                    let a = rng.gen_range(0..5);
                    let b = (a + rng.gen_range(1..5)) % 5;
                    c.cx(a, b);
                }
                _ => {
                    let a = rng.gen_range(0..5);
                    let b = (a + rng.gen_range(1..5)) % 5;
                    c.rzz(rng.gen_range(-3.0..3.0), a, b);
                }
            }
        }
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.norm_sqr(), 1.0);
    }

    #[test]
    fn expectation_of_diagonal() {
        // |+>|0>: P(00)=P(01)=.5 ... value = number of set bits
        let mut c = Circuit::new(2);
        c.h(0);
        let sv = StateVector::from_circuit(&c);
        let e = sv.expectation_diagonal(|idx| idx.count_ones() as f64);
        assert_close(e, 0.5);
    }

    #[test]
    fn measurements_are_ignored_by_from_circuit() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure_all();
        let sv = StateVector::from_circuit(&c);
        assert_close(sv.probabilities()[0], 0.5);
    }

    #[test]
    fn fidelity_of_orthogonal_states() {
        let mut a = Circuit::new(1);
        a.x(0);
        let sa = StateVector::from_circuit(&a);
        let sb = StateVector::new(1);
        assert_close(sa.fidelity(&sb), 0.0);
        assert_close(sa.fidelity(&sa.clone()), 1.0);
    }

    #[test]
    fn swap_equals_three_cnots() {
        let mut prep = Circuit::new(2);
        prep.h(0);
        prep.rx(0.7, 1);
        let mut c1 = prep.clone();
        c1.swap(0, 1);
        let mut c2 = prep.clone();
        c2.cx(0, 1);
        c2.cx(1, 0);
        c2.cx(0, 1);
        let s1 = StateVector::from_circuit(&c1);
        let s2 = StateVector::from_circuit(&c2);
        assert!(s1.fidelity(&s2) > 1.0 - 1e-10);
    }
}

#[cfg(test)]
mod measure_tests {
    use super::*;
    use qcircuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn measuring_basis_state_is_deterministic() {
        let mut c = Circuit::new(2);
        c.x(1);
        let mut sv = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!sv.measure_qubit(0, &mut rng));
        assert!(sv.measure_qubit(1, &mut rng));
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_measurement_correlates() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut ones, trials) = (0, 200);
        for _ in 0..trials {
            let mut c = Circuit::new(2);
            c.h(0);
            c.cx(0, 1);
            let mut sv = StateVector::from_circuit(&c);
            let first = sv.measure_qubit(0, &mut rng);
            let second = sv.measure_qubit(1, &mut rng);
            assert_eq!(first, second, "Bell pair must correlate");
            ones += u32::from(first);
        }
        let frac = f64::from(ones) / trials as f64;
        assert!((frac - 0.5).abs() < 0.15, "outcome fraction {frac}");
    }

    #[test]
    fn collapse_renormalizes() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.h(1);
        c.h(2);
        let mut sv = StateVector::from_circuit(&c);
        let mut rng = StdRng::seed_from_u64(9);
        let _ = sv.measure_qubit(1, &mut rng);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
        // Qubit 1 is now definite: all amplitude on one side.
        let p = sv.probabilities();
        let p_one: f64 = p
            .iter()
            .enumerate()
            .filter(|(i, _)| i & 2 != 0)
            .map(|(_, x)| x)
            .sum();
        assert!(p_one < 1e-12 || (p_one - 1.0).abs() < 1e-12);
    }
}
