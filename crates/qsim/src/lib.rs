//! Dense statevector simulation with an optional stochastic-Pauli noise
//! model.
//!
//! This crate substitutes for both roles quantum execution plays in the
//! paper:
//!
//! * **Noiseless sampling** (the paper uses the qiskit simulator) — to
//!   compute QAOA expectation values and the ideal approximation ratio
//!   `r0` of the ARG metric (§V-A).
//! * **Hardware execution** (the paper runs `ibmq_16_melbourne`) — modelled
//!   by Monte-Carlo *trajectories*: each gate fails independently with its
//!   calibrated error probability, injecting a uniformly random non-identity
//!   Pauli on its operands; idle qubits depolarize per concurrency layer and
//!   readout bits flip with the calibrated readout error. Circuit error
//!   therefore grows with gate count *and* depth, matching the
//!   success-probability reasoning of §II.
//!
//! # Examples
//!
//! ```
//! use qcircuit::Circuit;
//! use qsim::StateVector;
//!
//! // Bell state.
//! let mut c = Circuit::new(2);
//! c.h(0);
//! c.cx(0, 1);
//! let state = StateVector::from_circuit(&c);
//! let p = state.probabilities();
//! assert!((p[0b00] - 0.5).abs() < 1e-12);
//! assert!((p[0b11] - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
mod error;
mod kernels;
mod noise;
mod options;
mod par;
mod sampler;
mod state;

pub use error::SimError;
pub use noise::{NoiseModel, TrajectorySimulator};
pub use options::{default_threads, SimOptions};
pub use sampler::{counts_to_distribution, Counts, Sampler};
pub use state::{StateVector, MAX_QUBITS};
