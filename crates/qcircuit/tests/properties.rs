//! Property-based tests for the circuit IR.

use proptest::prelude::*;
use qcircuit::basis::{is_in_basis, to_basis, BasisSet};
use qcircuit::commute::{commutes, commutes_exact};
use qcircuit::layers::{asap_layers, from_layers};
use qcircuit::{qasm, Circuit, Gate, Instruction};

/// Strategy: an arbitrary gate instruction over `n` qubits.
fn arb_instruction(n: usize) -> impl Strategy<Value = Instruction> {
    let angle = -6.0f64..6.0;
    prop_oneof![
        (0..n).prop_map(|q| Instruction::one(Gate::H, q)),
        (0..n).prop_map(|q| Instruction::one(Gate::X, q)),
        (0..n, angle.clone()).prop_map(|(q, t)| Instruction::one(Gate::Rx(t.into()), q)),
        (0..n, angle.clone()).prop_map(|(q, t)| Instruction::one(Gate::Rz(t.into()), q)),
        (0..n, angle.clone()).prop_map(|(q, t)| Instruction::one(Gate::U1(t.into()), q)),
        two_qubit(n, None),
        (angle.clone()).prop_flat_map(move |t| two_qubit(n, Some(Gate::Rzz(t.into())))),
        (angle).prop_flat_map(move |t| two_qubit(n, Some(Gate::CPhase(t.into())))),
        two_qubit(n, Some(Gate::Swap)),
    ]
}

fn two_qubit(n: usize, gate: Option<Gate>) -> impl Strategy<Value = Instruction> {
    (0..n, 1..n).prop_map(move |(a, d)| {
        let b = (a + d) % n;
        Instruction::two(gate.unwrap_or(Gate::Cnot), a, b)
    })
}

fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_instruction(n), 0..max_len).prop_map(move |instrs| {
        let mut c = Circuit::new(n);
        for i in instrs {
            c.push(i).expect("instructions are in range");
        }
        c
    })
}

proptest! {
    #[test]
    fn depth_is_bounded_by_length(c in arb_circuit(5, 40)) {
        prop_assert!(c.depth() <= c.len());
        if !c.is_empty() {
            prop_assert!(c.depth() >= 1);
            // depth is at least len / num_qubits (pigeonhole).
            prop_assert!(c.depth() * c.num_qubits() >= c.len());
        }
    }

    #[test]
    fn layers_partition_the_circuit(c in arb_circuit(5, 40)) {
        let layers = asap_layers(&c);
        prop_assert_eq!(layers.len(), c.depth());
        prop_assert_eq!(layers.iter().map(Vec::len).sum::<usize>(), c.len());
        for layer in &layers {
            let mut used = std::collections::HashSet::new();
            for instr in layer {
                for q in instr.qubit_vec() {
                    prop_assert!(used.insert(q));
                }
            }
        }
        // Rebuilding from layers preserves depth and length.
        let rebuilt = from_layers(c.num_qubits(), &layers);
        prop_assert_eq!(rebuilt.depth(), c.depth());
        prop_assert_eq!(rebuilt.len(), c.len());
    }

    #[test]
    fn basis_lowering_is_complete_and_preserves_cx_accounting(c in arb_circuit(4, 30)) {
        let lowered = to_basis(&c, BasisSet::Ibm).unwrap();
        prop_assert!(is_in_basis(&lowered, BasisSet::Ibm));
        // Each two-qubit IR gate contributes its known CNOT cost.
        let expected_cx: usize = c
            .iter()
            .map(|i| match i.gate() {
                Gate::Cnot => 1,
                Gate::Swap => 3,
                Gate::Cz | Gate::CPhase(_) | Gate::Rzz(_) => 2,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(lowered.count_gate("cx"), expected_cx);
        // Measurements survive lowering.
        prop_assert_eq!(lowered.count_gate("measure"), c.count_gate("measure"));
    }

    #[test]
    fn qasm_round_trips(c in arb_circuit(5, 30)) {
        let text = qasm::to_qasm(&c).unwrap();
        let parsed = qasm::parse(&text).unwrap();
        prop_assert_eq!(parsed, c);
    }

    #[test]
    fn reversed_twice_is_identity(c in arb_circuit(4, 25)) {
        let twice = c.reversed().reversed();
        // Measurements are dropped by reversal; compare unitary parts.
        let unitary: Vec<Instruction> =
            c.iter().filter(|i| i.gate().is_unitary()).copied().collect();
        prop_assert_eq!(twice.instructions(), &unitary[..]);
    }

    #[test]
    fn structural_commutation_is_sound(
        a in arb_instruction(2),
        b in arb_instruction(2),
    ) {
        // On 2 qubits the exact check always applies (support <= 2).
        if commutes(&a, &b) {
            if let Some(exact) = commutes_exact(&a, &b) {
                prop_assert!(exact, "structural rule wrongly passed {a} vs {b}");
            }
        }
    }

    #[test]
    fn remap_preserves_structure(c in arb_circuit(4, 25)) {
        let mapping = [7usize, 2, 5, 0];
        let mapped = c.remapped(8, |q| mapping[q]);
        prop_assert_eq!(mapped.len(), c.len());
        prop_assert_eq!(mapped.depth(), c.depth());
        prop_assert_eq!(mapped.gate_count(), c.gate_count());
        for (orig, new) in c.iter().zip(mapped.iter()) {
            prop_assert_eq!(new.gate(), orig.gate());
            prop_assert_eq!(new.q0(), mapping[orig.q0()]);
        }
    }

    #[test]
    fn gate_count_splits_by_arity(c in arb_circuit(5, 40)) {
        let ones = c
            .iter()
            .filter(|i| i.gate().arity() == 1 && i.gate().is_unitary())
            .count();
        let twos = c.two_qubit_count();
        prop_assert_eq!(c.gate_count(), ones + twos);
    }
}
