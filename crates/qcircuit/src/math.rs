//! Minimal complex arithmetic and gate matrices.
//!
//! The offline dependency set contains no complex-number crate, so this
//! module provides the small amount of complex linear algebra the stack
//! needs: a `Complex` scalar, 2×2 and 4×4 unitary matrices for every gate,
//! and matrix products for equivalence checking.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
/// The multiplicative identity.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
/// The imaginary unit.
pub const I: Complex = Complex { re: 0.0, im: 1.0 };

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real complex number.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|^2` — the Born-rule probability weight.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Whether `self` is within `tol` of `other` in both components.
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Integer power by binary exponentiation (`z⁰ = 1`). Used for the
    /// phase-power tables the simulation kernels build per fused block.
    pub fn powu(self, mut n: u32) -> Self {
        let mut base = self;
        let mut acc = ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// A 2×2 complex matrix in row-major order — a single-qubit unitary.
pub type Matrix2 = [[Complex; 2]; 2];

/// A 4×4 complex matrix in row-major order — a two-qubit unitary with basis
/// order `|q1 q0⟩ ∈ {00, 01, 10, 11}` (qubit 0 is the least-significant
/// bit).
pub type Matrix4 = [[Complex; 4]; 4];

/// The 2×2 identity.
pub fn identity2() -> Matrix2 {
    [[ONE, ZERO], [ZERO, ONE]]
}

/// The 4×4 identity.
pub fn identity4() -> Matrix4 {
    let mut m = [[ZERO; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = ONE;
    }
    m
}

/// Product of two 2×2 matrices (`a * b`, i.e. `b` applied first).
pub fn matmul2(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut out = [[ZERO; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            for (k, bk) in b.iter().enumerate() {
                out[i][j] += a[i][k] * bk[j];
            }
        }
    }
    out
}

/// Product of two 4×4 matrices (`a * b`, i.e. `b` applied first).
pub fn matmul4(a: &Matrix4, b: &Matrix4) -> Matrix4 {
    let mut out = [[ZERO; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            for (k, bk) in b.iter().enumerate() {
                out[i][j] += a[i][k] * bk[j];
            }
        }
    }
    out
}

/// Kronecker product `a ⊗ b` of two single-qubit matrices, where `a` acts
/// on the more-significant qubit.
pub fn kron(a: &Matrix2, b: &Matrix2) -> Matrix4 {
    let mut out = [[ZERO; 4]; 4];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                for l in 0..2 {
                    out[2 * i + k][2 * j + l] = a[i][j] * b[k][l];
                }
            }
        }
    }
    out
}

/// Whether two matrices are equal up to a global phase, within `tol`.
///
/// Finds the first entry of `a` with significant magnitude and uses the
/// ratio against the matching entry of `b` as the candidate phase.
pub fn equal_up_to_phase4(a: &Matrix4, b: &Matrix4, tol: f64) -> bool {
    let mut phase: Option<Complex> = None;
    for i in 0..4 {
        for j in 0..4 {
            if a[i][j].abs() > 1e-9 {
                if b[i][j].abs() <= 1e-9 {
                    return false;
                }
                let inv = 1.0 / a[i][j].norm_sqr();
                phase = Some(b[i][j] * a[i][j].conj().scale(inv));
                break;
            }
        }
        if phase.is_some() {
            break;
        }
    }
    let Some(phase) = phase else {
        // `a` is the zero matrix; equal iff `b` is too.
        return b.iter().flatten().all(|z| z.abs() <= tol);
    };
    for i in 0..4 {
        for j in 0..4 {
            if !(a[i][j] * phase).approx_eq(b[i][j], tol) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn complex_field_axioms() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b, Complex::new(0.5, 5.0));
        assert_eq!(a - b, Complex::new(1.5, -1.0));
        assert_eq!(a * ONE, a);
        assert_eq!(a * ZERO, ZERO);
        // (1+2i)(-0.5+3i) = -0.5 + 3i - i + 6i^2 = -6.5 + 2i
        assert_eq!(a * b, Complex::new(-6.5, 2.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn cis_and_conjugate() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(I, TOL));
        assert!((z * z.conj()).approx_eq(ONE, TOL));
        assert!((Complex::cis(0.3).abs() - 1.0).abs() < TOL);
    }

    #[test]
    fn norm_sqr_is_modulus_squared() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
    }

    #[test]
    fn matrix_products() {
        let x: Matrix2 = [[ZERO, ONE], [ONE, ZERO]];
        let id = identity2();
        assert_eq!(matmul2(&x, &x), id);
        assert_eq!(matmul2(&x, &id), x);

        let xx = kron(&x, &x);
        assert_eq!(matmul4(&xx, &xx), identity4());
    }

    #[test]
    fn kron_ordering() {
        // Z ⊗ I flips sign on rows where the high qubit is 1.
        let z: Matrix2 = [[ONE, ZERO], [ZERO, -ONE]];
        let zi = kron(&z, &identity2());
        assert_eq!(zi[0][0], ONE);
        assert_eq!(zi[1][1], ONE);
        assert_eq!(zi[2][2], -ONE);
        assert_eq!(zi[3][3], -ONE);
    }

    #[test]
    fn phase_equality() {
        let a = identity4();
        let mut b = identity4();
        for row in b.iter_mut() {
            for z in row.iter_mut() {
                *z *= Complex::cis(0.7);
            }
        }
        assert!(equal_up_to_phase4(&a, &b, 1e-9));
        b[3][3] *= Complex::cis(0.1);
        assert!(!equal_up_to_phase4(&a, &b, 1e-9));
    }
}
