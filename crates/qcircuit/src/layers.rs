//! Concurrency-layer scheduling.
//!
//! The backend compiler the paper builds on (\[47\], \[48\]) "partitions the
//! circuit in different layers where each layer consists of gates that can
//! be executed concurrently in the hardware (gates operating on a different
//! set of qubits)". This module implements that partition in the standard
//! as-soon-as-possible (ASAP) form that respects program order: a gate is
//! placed in the earliest layer after the last layer touching any of its
//! qubits.
//!
//! The number of layers equals [`crate::Circuit::depth`].

use crate::{Circuit, Instruction};

/// Partitions the circuit into ASAP concurrency layers.
///
/// Each inner vector holds instructions that act on pairwise-disjoint
/// qubits and can execute in the same time step; layers are ordered in
/// time. Program order is respected: a gate never moves before a
/// program-earlier gate that shares a qubit.
///
/// # Examples
///
/// ```
/// use qcircuit::{layers::asap_layers, Circuit};
///
/// let mut c = Circuit::new(3);
/// c.h(0);
/// c.h(1);
/// c.cx(0, 1);
/// c.h(2);
/// let layers = asap_layers(&c);
/// assert_eq!(layers.len(), 2);
/// assert_eq!(layers[0].len(), 3); // h q0, h q1, h q2
/// assert_eq!(layers[1].len(), 1); // cx
/// ```
pub fn asap_layers(c: &Circuit) -> Vec<Vec<Instruction>> {
    let mut buf = LayerBuffer::new();
    asap_layers_into(c, 0, &mut buf);
    buf.layers.truncate(buf.used);
    buf.layers
}

/// Reusable scratch for [`asap_layers_into`]: the frontier and the layer
/// vectors (including each layer's element buffer) survive across calls,
/// so the per-route-call layer partition allocates nothing in steady
/// state.
#[derive(Debug, Default)]
pub struct LayerBuffer {
    /// Layer storage; only the first [`LayerBuffer::used`] entries are
    /// meaningful after a build (later entries are retained, empty, for
    /// reuse).
    pub layers: Vec<Vec<Instruction>>,
    /// Number of layers the last build produced.
    pub used: usize,
    frontier: Vec<usize>,
}

impl LayerBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        LayerBuffer::default()
    }

    /// The layers of the last [`asap_layers_into`] build.
    pub fn built(&self) -> &[Vec<Instruction>] {
        &self.layers[..self.used]
    }

    fn reset(&mut self, num_qubits: usize) {
        self.frontier.clear();
        self.frontier.resize(num_qubits, 0);
        for layer in &mut self.layers {
            layer.clear();
        }
        self.used = 0;
    }

    fn place(&mut self, instr: Instruction, level: usize) {
        if level == self.used {
            if self.used == self.layers.len() {
                self.layers.push(Vec::new());
            }
            self.used += 1;
        }
        self.layers[level].push(instr);
    }
}

/// [`asap_layers`] over the instruction suffix starting at `start`,
/// building into a reusable [`LayerBuffer`] instead of allocating fresh
/// vectors. Produces exactly the layers `asap_layers` would report for
/// the suffix as a standalone circuit.
///
/// # Panics
///
/// Panics if `start > c.len()`.
pub fn asap_layers_into(c: &Circuit, start: usize, buf: &mut LayerBuffer) {
    buf.reset(c.num_qubits());
    for instr in &c.instructions()[start..] {
        let (q0, arity) = (instr.q0(), instr.gate().arity());
        let level = if arity == 1 {
            buf.frontier[q0]
        } else {
            buf.frontier[q0].max(buf.frontier[instr.q1()])
        };
        buf.place(*instr, level);
        buf.frontier[q0] = level + 1;
        if arity == 2 {
            buf.frontier[instr.q1()] = level + 1;
        }
    }
}

/// Groups only the *two-qubit* gates of `c` into ASAP layers, ignoring
/// single-qubit gates and measurements.
///
/// The SWAP-insertion backends operate on two-qubit layers: coupling
/// constraints only bind two-qubit gates, and single-qubit gates route
/// trivially.
pub fn two_qubit_layers(c: &Circuit) -> Vec<Vec<Instruction>> {
    let mut frontier = vec![0usize; c.num_qubits()];
    let mut layers: Vec<Vec<Instruction>> = Vec::new();
    for instr in c.iter().filter(|i| i.gate().arity() == 2) {
        let (a, b) = (instr.q0(), instr.q1());
        let level = frontier[a].max(frontier[b]);
        if level == layers.len() {
            layers.push(Vec::new());
        }
        layers[level].push(*instr);
        frontier[a] = level + 1;
        frontier[b] = level + 1;
    }
    layers
}

/// Rebuilds a circuit from explicit layers, preserving the layer order.
///
/// # Panics
///
/// Panics if any instruction references a qubit `>= num_qubits`.
pub fn from_layers(num_qubits: usize, layers: &[Vec<Instruction>]) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for layer in layers {
        for instr in layer {
            c.push(*instr)
                .unwrap_or_else(|e| panic!("invalid layered instruction: {e}"));
        }
    }
    c
}

/// The average number of gates per layer — a parallelism figure of merit.
/// Returns 0.0 for the empty circuit.
pub fn mean_layer_occupancy(c: &Circuit) -> f64 {
    let layers = asap_layers(c);
    if layers.is_empty() {
        return 0.0;
    }
    c.len() as f64 / layers.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    fn qaoa_like(order: &[(usize, usize)]) -> Circuit {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        for &(a, b) in order {
            c.rzz(0.5, a, b);
        }
        c
    }

    #[test]
    fn layers_are_disjoint_in_qubits() {
        let c = qaoa_like(&[(0, 1), (2, 3), (0, 2), (1, 3)]);
        for layer in asap_layers(&c) {
            let mut used = std::collections::HashSet::new();
            for instr in &layer {
                for q in instr.qubit_vec() {
                    assert!(used.insert(q), "qubit {q} reused within a layer");
                }
            }
        }
    }

    #[test]
    fn layer_count_matches_depth() {
        for order in [
            vec![(0, 1), (1, 2), (2, 3)],
            vec![(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)],
            vec![(0, 1), (0, 2), (0, 3)],
        ] {
            let c = qaoa_like(&order);
            assert_eq!(asap_layers(&c).len(), c.depth());
        }
    }

    #[test]
    fn two_qubit_layers_ignore_singles() {
        let c = qaoa_like(&[(0, 1), (2, 3), (1, 2)]);
        let layers = two_qubit_layers(&c);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].len(), 2);
        assert_eq!(layers[1].len(), 1);
        assert!(layers
            .iter()
            .flatten()
            .all(|i| matches!(i.gate(), Gate::Rzz(_))));
    }

    #[test]
    fn from_layers_round_trips() {
        let c = qaoa_like(&[(0, 1), (2, 3), (0, 3)]);
        let layers = asap_layers(&c);
        let rebuilt = from_layers(4, &layers);
        assert_eq!(rebuilt.depth(), c.depth());
        assert_eq!(rebuilt.len(), c.len());
    }

    #[test]
    fn occupancy() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        assert!((mean_layer_occupancy(&c) - 4.0).abs() < 1e-12);
        assert_eq!(mean_layer_occupancy(&Circuit::new(3)), 0.0);
    }

    #[test]
    fn layer_buffer_reuse_matches_fresh_build() {
        let mut buf = LayerBuffer::new();
        let big = qaoa_like(&[(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)]);
        let small = qaoa_like(&[(0, 1)]);
        for c in [&big, &small, &big] {
            asap_layers_into(c, 0, &mut buf);
            assert_eq!(buf.built(), asap_layers(c).as_slice());
        }
        // Suffix build matches the suffix as a standalone circuit.
        asap_layers_into(&big, 4, &mut buf);
        let mut suffix = Circuit::new(4);
        for instr in &big.instructions()[4..] {
            suffix.push(*instr).unwrap();
        }
        assert_eq!(buf.built(), asap_layers(&suffix).as_slice());
    }

    #[test]
    fn program_order_is_respected() {
        // Two commuting RZZs sharing a qubit must stay in program order
        // across layers (the scheduler is order-preserving; reordering is
        // the *compiler passes'* job).
        let mut c = Circuit::new(3);
        c.rzz(0.1, 0, 1);
        c.rzz(0.2, 1, 2);
        let layers = asap_layers(&c);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0][0].gate(), Gate::Rzz((0.1).into()));
        assert_eq!(layers[1][0].gate(), Gate::Rzz((0.2).into()));
    }
}
