//! ASCII circuit drawing, one row per qubit and one column per
//! concurrency layer — handy for debugging compilation passes and for the
//! worked examples mirroring the paper's figures.

use crate::layers::asap_layers;
use crate::{Circuit, Gate};

/// Renders the circuit as fixed-width ASCII art.
///
/// Each column is one ASAP layer. Two-qubit gates mark their first operand
/// with `*` (control for CNOT/CP) and second with the gate mnemonic;
/// idle wires show `-`.
///
/// # Examples
///
/// ```
/// let mut c = qcircuit::Circuit::new(2);
/// c.h(0);
/// c.cx(0, 1);
/// let art = qcircuit::draw::draw(&c);
/// assert!(art.lines().count() >= 2);
/// ```
pub fn draw(c: &Circuit) -> String {
    let layers = asap_layers(c);
    let n = c.num_qubits();
    // cells[q][layer]
    let mut cells: Vec<Vec<String>> = vec![vec![String::new(); layers.len()]; n];
    for (li, layer) in layers.iter().enumerate() {
        for instr in layer {
            match instr.gate() {
                Gate::Measure => cells[instr.q0()][li] = "M".to_owned(),
                g if g.arity() == 1 => {
                    cells[instr.q0()][li] = short_name(g);
                }
                g => {
                    cells[instr.q0()][li] = format!("*{}", short_name(g));
                    cells[instr.q1()][li] = short_name(g);
                }
            }
        }
    }
    let widths: Vec<usize> = (0..layers.len())
        .map(|li| {
            cells
                .iter()
                .map(|row| row[li].len())
                .max()
                .unwrap_or(1)
                .max(1)
        })
        .collect();
    let mut out = String::new();
    for (q, row) in cells.iter().enumerate() {
        out.push_str(&format!("q{q:<3}|"));
        for (li, cell) in row.iter().enumerate() {
            let w = widths[li];
            if cell.is_empty() {
                out.push_str(&format!(" {:-<w$} ", ""));
            } else {
                out.push_str(&format!(" {cell:<w$} "));
            }
            out.push('|');
        }
        out.push('\n');
    }
    out
}

fn short_name(g: Gate) -> String {
    match g {
        Gate::Rzz(_) => "ZZ".to_owned(),
        Gate::CPhase(_) => "CP".to_owned(),
        Gate::Cnot => "X".to_owned(),
        Gate::Cz => "Z".to_owned(),
        Gate::Swap => "SW".to_owned(),
        other => other.name().to_uppercase(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drawing_has_one_row_per_qubit() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rzz(0.4, 1, 2);
        let art = draw(&c);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains("*X"));
        assert!(art.contains("*ZZ"));
    }

    #[test]
    fn idle_wires_render_dashes() {
        let mut c = Circuit::new(2);
        c.h(0);
        let art = draw(&c);
        let line_q1 = art.lines().nth(1).unwrap();
        assert!(line_q1.contains('-'));
    }

    #[test]
    fn empty_circuit_draws_bare_wires() {
        let c = Circuit::new(2);
        let art = draw(&c);
        assert_eq!(art.lines().count(), 2);
    }

    #[test]
    fn measurement_renders_m() {
        let mut c = Circuit::new(1);
        c.measure(0);
        assert!(draw(&c).contains('M'));
    }
}
