use std::f64::consts::{FRAC_PI_2, PI};
use std::fmt;

use crate::math::{self, Complex, Matrix2, Matrix4, ONE, ZERO};
use crate::param::{Angle, ParamValues};
use crate::CircuitError;

/// A quantum gate (or measurement) from the compiler's gate set.
///
/// The set covers the gates appearing in the paper's circuits (`H`, `RX`,
/// the commuting cost-layer gate, `SWAP`, measurement), the IBM basis gates
/// (`U1`, `U2`, `U3`, `CNOT`) the transpiler lowers to, and common Pauli /
/// phase gates used by the noise model and tests.
///
/// Angles are [`Angle`] values: concrete radians, or symbolic uses of a
/// circuit parameter (see [`crate::param`]). Numeric accessors
/// ([`Gate::matrix2`], [`Gate::matrix4`], [`Gate::kernel`]) require bound
/// angles. `Rzz(θ)` is `exp(-i θ/2 Z⊗Z)` — the gate the paper calls CPHASE
/// in its QAOA cost layers (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Gate {
    /// Identity.
    Id,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate.
    Sdg,
    /// `T = diag(1, e^{iπ/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Rotation about X: `exp(-i θ/2 X)`.
    Rx(Angle),
    /// Rotation about Y: `exp(-i θ/2 Y)`.
    Ry(Angle),
    /// Rotation about Z: `exp(-i θ/2 Z)`.
    Rz(Angle),
    /// IBM virtual-Z basis gate: `diag(1, e^{iλ})` (equals `Rz(λ)` up to
    /// global phase).
    U1(Angle),
    /// IBM basis gate `U2(φ, λ)` — a single √X-duration pulse.
    U2(Angle, Angle),
    /// IBM basis gate `U3(θ, φ, λ)` — the general single-qubit unitary.
    U3(Angle, Angle, Angle),
    /// Controlled-NOT (control is the first operand).
    Cnot,
    /// Controlled-Z.
    Cz,
    /// Controlled-phase `diag(1, 1, 1, e^{iλ})`.
    CPhase(Angle),
    /// ZZ interaction `exp(-i θ/2 Z⊗Z)` — the paper's commuting "CPHASE"
    /// cost gate.
    Rzz(Angle),
    /// SWAP gate.
    Swap,
    /// Computational-basis measurement of one qubit.
    Measure,
}

impl Gate {
    /// Number of qubit operands the gate takes (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Gate::Id
            | Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::U1(_)
            | Gate::U2(..)
            | Gate::U3(..)
            | Gate::Measure => 1,
            Gate::Cnot | Gate::Cz | Gate::CPhase(_) | Gate::Rzz(_) | Gate::Swap => 2,
        }
    }

    /// Lower-case mnemonic, matching OpenQASM 2 where the gate exists there.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::Id => "id",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::U1(_) => "u1",
            Gate::U2(..) => "u2",
            Gate::U3(..) => "u3",
            Gate::Cnot => "cx",
            Gate::Cz => "cz",
            Gate::CPhase(_) => "cp",
            Gate::Rzz(_) => "rzz",
            Gate::Swap => "swap",
            Gate::Measure => "measure",
        }
    }

    /// Whether this is a unitary gate (everything except [`Gate::Measure`]).
    pub fn is_unitary(&self) -> bool {
        !matches!(self, Gate::Measure)
    }

    /// Whether the gate is diagonal in the computational (Z) basis.
    ///
    /// Diagonal gates all commute with one another — the property the
    /// paper's IP/IC/VIC methodologies exploit for the QAOA cost layer.
    /// The classification is structural: it holds for symbolic angles too
    /// (Rzz/CPhase commute regardless of binding).
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Id
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::U1(_)
                | Gate::Cz
                | Gate::CPhase(_)
                | Gate::Rzz(_)
        )
    }

    /// Whether the two operands of a two-qubit gate are interchangeable.
    pub fn is_symmetric(&self) -> bool {
        matches!(self, Gate::Cz | Gate::CPhase(_) | Gate::Rzz(_) | Gate::Swap)
    }

    /// The gate's rotation/phase parameters, in declaration order.
    pub fn params(&self) -> Vec<Angle> {
        match *self {
            Gate::Rx(t)
            | Gate::Ry(t)
            | Gate::Rz(t)
            | Gate::U1(t)
            | Gate::CPhase(t)
            | Gate::Rzz(t) => vec![t],
            Gate::U2(p, l) => vec![p, l],
            Gate::U3(t, p, l) => vec![t, p, l],
            _ => vec![],
        }
    }

    /// Whether any angle of the gate is symbolic (unbound).
    ///
    /// Allocation-free (unlike [`Gate::params`]): rebind hot paths call
    /// this once per instruction.
    pub fn is_parametric(&self) -> bool {
        match *self {
            Gate::Rx(t)
            | Gate::Ry(t)
            | Gate::Rz(t)
            | Gate::U1(t)
            | Gate::CPhase(t)
            | Gate::Rzz(t) => t.is_sym(),
            Gate::U2(p, l) => p.is_sym() || l.is_sym(),
            Gate::U3(t, p, l) => t.is_sym() || p.is_sym() || l.is_sym(),
            _ => false,
        }
    }

    /// The gate with every symbolic angle substituted from `values`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] if a referenced parameter
    /// is not covered by `values`.
    pub fn bound(&self, values: &ParamValues) -> Result<Gate, CircuitError> {
        Ok(match *self {
            Gate::Rx(t) => Gate::Rx(t.bind(values)?),
            Gate::Ry(t) => Gate::Ry(t.bind(values)?),
            Gate::Rz(t) => Gate::Rz(t.bind(values)?),
            Gate::U1(t) => Gate::U1(t.bind(values)?),
            Gate::U2(p, l) => Gate::U2(p.bind(values)?, l.bind(values)?),
            Gate::U3(t, p, l) => Gate::U3(t.bind(values)?, p.bind(values)?, l.bind(values)?),
            Gate::CPhase(t) => Gate::CPhase(t.bind(values)?),
            Gate::Rzz(t) => Gate::Rzz(t.bind(values)?),
            g => g,
        })
    }

    /// The 2×2 unitary of a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics for two-qubit gates, for [`Gate::Measure`], and for
    /// parametric gates (bind first).
    pub fn matrix2(&self) -> Matrix2 {
        let half = |t: f64| t / 2.0;
        match *self {
            Gate::Id => math::identity2(),
            Gate::H => {
                let s = Complex::real(1.0 / 2.0_f64.sqrt());
                [[s, s], [s, -s]]
            }
            Gate::X => [[ZERO, ONE], [ONE, ZERO]],
            Gate::Y => [[ZERO, -math::I], [math::I, ZERO]],
            Gate::Z => [[ONE, ZERO], [ZERO, -ONE]],
            Gate::S => [[ONE, ZERO], [ZERO, math::I]],
            Gate::Sdg => [[ONE, ZERO], [ZERO, -math::I]],
            Gate::T => [[ONE, ZERO], [ZERO, Complex::cis(PI / 4.0)]],
            Gate::Tdg => [[ONE, ZERO], [ZERO, Complex::cis(-PI / 4.0)]],
            Gate::Rx(t) => {
                let t = t.value();
                let (c, s) = (half(t).cos(), half(t).sin());
                [
                    [Complex::real(c), Complex::new(0.0, -s)],
                    [Complex::new(0.0, -s), Complex::real(c)],
                ]
            }
            Gate::Ry(t) => {
                let t = t.value();
                let (c, s) = (half(t).cos(), half(t).sin());
                [
                    [Complex::real(c), Complex::real(-s)],
                    [Complex::real(s), Complex::real(c)],
                ]
            }
            Gate::Rz(t) => {
                let t = t.value();
                [
                    [Complex::cis(-half(t)), ZERO],
                    [ZERO, Complex::cis(half(t))],
                ]
            }
            Gate::U1(l) => [[ONE, ZERO], [ZERO, Complex::cis(l.value())]],
            Gate::U2(phi, lam) => {
                let (phi, lam) = (phi.value(), lam.value());
                let s = 1.0 / 2.0_f64.sqrt();
                [
                    [Complex::real(s), Complex::cis(lam).scale(-s)],
                    [Complex::cis(phi).scale(s), Complex::cis(phi + lam).scale(s)],
                ]
            }
            Gate::U3(t, phi, lam) => {
                let (t, phi, lam) = (t.value(), phi.value(), lam.value());
                let (c, s) = (half(t).cos(), half(t).sin());
                [
                    [Complex::real(c), Complex::cis(lam).scale(-s)],
                    [Complex::cis(phi).scale(s), Complex::cis(phi + lam).scale(c)],
                ]
            }
            _ => panic!("matrix2 called on {} (arity {})", self.name(), self.arity()),
        }
    }

    /// The 4×4 unitary of a two-qubit gate, with the **first operand as the
    /// more-significant basis index** (row/column index `2*a + b` for
    /// operands `(a, b)`).
    ///
    /// # Panics
    ///
    /// Panics for single-qubit gates and for parametric gates (bind first).
    pub fn matrix4(&self) -> Matrix4 {
        match *self {
            Gate::Cnot => {
                // control = first operand (high bit): |10> -> |11>, |11> -> |10>
                let mut m = [[ZERO; 4]; 4];
                m[0][0] = ONE;
                m[1][1] = ONE;
                m[2][3] = ONE;
                m[3][2] = ONE;
                m
            }
            Gate::Cz => {
                let mut m = math::identity4();
                m[3][3] = -ONE;
                m
            }
            Gate::CPhase(l) => {
                let mut m = math::identity4();
                m[3][3] = Complex::cis(l.value());
                m
            }
            Gate::Rzz(t) => {
                let t = t.value();
                let minus = Complex::cis(-t / 2.0);
                let plus = Complex::cis(t / 2.0);
                let mut m = [[ZERO; 4]; 4];
                m[0][0] = minus;
                m[1][1] = plus;
                m[2][2] = plus;
                m[3][3] = minus;
                m
            }
            Gate::Swap => {
                let mut m = [[ZERO; 4]; 4];
                m[0][0] = ONE;
                m[1][2] = ONE;
                m[2][1] = ONE;
                m[3][3] = ONE;
                m
            }
            _ => panic!("matrix4 called on {} (arity {})", self.name(), self.arity()),
        }
    }

    /// The hermitian conjugate (inverse) of a unitary gate. Symbolic angles
    /// invert symbolically (negated scale).
    ///
    /// # Panics
    ///
    /// Panics for [`Gate::Measure`], which has no inverse.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::Id => Gate::Id,
            Gate::H => Gate::H,
            Gate::X => Gate::X,
            Gate::Y => Gate::Y,
            Gate::Z => Gate::Z,
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(t.neg()),
            Gate::Ry(t) => Gate::Ry(t.neg()),
            Gate::Rz(t) => Gate::Rz(t.neg()),
            Gate::U1(l) => Gate::U1(l.neg()),
            Gate::U2(phi, lam) => Gate::U3(Angle::Const(-FRAC_PI_2), lam.neg(), phi.neg()),
            Gate::U3(t, phi, lam) => Gate::U3(t.neg(), lam.neg(), phi.neg()),
            Gate::Cnot => Gate::Cnot,
            Gate::Cz => Gate::Cz,
            Gate::CPhase(l) => Gate::CPhase(l.neg()),
            Gate::Rzz(t) => Gate::Rzz(t.neg()),
            Gate::Swap => Gate::Swap,
            Gate::Measure => panic!("measurement has no inverse"),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p:.4}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{equal_up_to_phase4, identity2, identity4, kron, matmul2, matmul4};
    use crate::param::ParamId;

    fn a(v: f64) -> Angle {
        Angle::Const(v)
    }

    fn all_1q() -> Vec<Gate> {
        vec![
            Gate::Id,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(a(0.37)),
            Gate::Ry(a(1.2)),
            Gate::Rz(a(-0.8)),
            Gate::U1(a(0.55)),
            Gate::U2(a(0.4), a(-0.9)),
            Gate::U3(a(1.0), a(0.2), a(0.3)),
        ]
    }

    fn all_2q() -> Vec<Gate> {
        vec![
            Gate::Cnot,
            Gate::Cz,
            Gate::CPhase(a(0.73)),
            Gate::Rzz(a(-1.1)),
            Gate::Swap,
        ]
    }

    fn is_unitary2(m: &Matrix2) -> bool {
        let mut dagger = [[ZERO; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                dagger[i][j] = m[j][i].conj();
            }
        }
        let prod = matmul2(&dagger, m);
        let id = identity2();
        (0..2).all(|i| (0..2).all(|j| prod[i][j].approx_eq(id[i][j], 1e-12)))
    }

    fn is_unitary4(m: &Matrix4) -> bool {
        let mut dagger = [[ZERO; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                dagger[i][j] = m[j][i].conj();
            }
        }
        let prod = matmul4(&dagger, m);
        let id = identity4();
        (0..4).all(|i| (0..4).all(|j| prod[i][j].approx_eq(id[i][j], 1e-12)))
    }

    #[test]
    fn all_single_qubit_matrices_are_unitary() {
        for g in all_1q() {
            assert!(is_unitary2(&g.matrix2()), "{g} not unitary");
            assert_eq!(g.arity(), 1);
        }
    }

    #[test]
    fn all_two_qubit_matrices_are_unitary() {
        for g in all_2q() {
            assert!(is_unitary4(&g.matrix4()), "{g} not unitary");
            assert_eq!(g.arity(), 2);
        }
    }

    #[test]
    fn inverses_cancel() {
        for g in all_1q() {
            let prod = matmul2(&g.inverse().matrix2(), &g.matrix2());
            let a4 = kron(&prod, &identity2());
            assert!(
                equal_up_to_phase4(&a4, &identity4(), 1e-9),
                "{g} inverse does not cancel"
            );
        }
        for g in all_2q() {
            let prod = matmul4(&g.inverse().matrix4(), &g.matrix4());
            assert!(equal_up_to_phase4(&prod, &identity4(), 1e-9), "{g} inverse");
        }
    }

    #[test]
    fn u_gates_match_rotation_gates_up_to_phase() {
        // U1(λ) == Rz(λ) up to phase
        let u = kron(&Gate::U1(a(0.9)).matrix2(), &identity2());
        let r = kron(&Gate::Rz(a(0.9)).matrix2(), &identity2());
        assert!(equal_up_to_phase4(&u, &r, 1e-9));
        // H == U2(0, π)
        let u = kron(&Gate::H.matrix2(), &identity2());
        let r = kron(&Gate::U2(a(0.0), a(PI)).matrix2(), &identity2());
        assert!(equal_up_to_phase4(&u, &r, 1e-9));
        // Rx(θ) == U3(θ, -π/2, π/2)
        let u = kron(&Gate::Rx(a(0.77)).matrix2(), &identity2());
        let r = kron(
            &Gate::U3(a(0.77), a(-FRAC_PI_2), a(FRAC_PI_2)).matrix2(),
            &identity2(),
        );
        assert!(equal_up_to_phase4(&u, &r, 1e-9));
    }

    #[test]
    fn rzz_is_cnot_rz_cnot() {
        // Figure 1(d): CPHASE(γ) = CNOT · RZ(γ)_target · CNOT.
        let theta = 0.61;
        let cnot = Gate::Cnot.matrix4();
        let rz_target = kron(&identity2(), &Gate::Rz(a(theta)).matrix2());
        let composed = matmul4(&cnot, &matmul4(&rz_target, &cnot));
        assert!(equal_up_to_phase4(
            &composed,
            &Gate::Rzz(a(theta)).matrix4(),
            1e-9
        ));
    }

    #[test]
    fn cphase_from_rzz_and_u1() {
        // CP(λ) = e^{iλ/4} · U1(λ/2)⊗U1(λ/2) · Rzz(-λ/2)
        let lam = 1.3;
        let u1s = kron(
            &Gate::U1(a(lam / 2.0)).matrix2(),
            &Gate::U1(a(lam / 2.0)).matrix2(),
        );
        let composed = matmul4(&u1s, &Gate::Rzz(a(-lam / 2.0)).matrix4());
        assert!(equal_up_to_phase4(
            &composed,
            &Gate::CPhase(a(lam)).matrix4(),
            1e-9
        ));
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Rzz(a(0.3)).is_diagonal());
        assert!(Gate::CPhase(a(0.3)).is_diagonal());
        assert!(Gate::Rz(a(0.3)).is_diagonal());
        assert!(!Gate::Rx(a(0.3)).is_diagonal());
        assert!(!Gate::Cnot.is_diagonal());
        assert!(!Gate::H.is_diagonal());
        // classification is structural: symbolic angles classify identically
        assert!(Gate::Rzz(Angle::sym(ParamId(0))).is_diagonal());
        assert!(Gate::CPhase(Angle::sym(ParamId(0))).is_diagonal());
    }

    #[test]
    fn symmetric_classification() {
        assert!(Gate::Rzz(a(0.2)).is_symmetric());
        assert!(Gate::Swap.is_symmetric());
        assert!(!Gate::Cnot.is_symmetric());
        assert!(Gate::Rzz(Angle::sym(ParamId(1))).is_symmetric());
    }

    #[test]
    fn display_includes_parameters() {
        assert_eq!(Gate::H.to_string(), "h");
        assert_eq!(Gate::Rzz(a(0.5)).to_string(), "rzz(0.5000)");
        assert_eq!(
            Gate::U3(a(1.0), a(2.0), a(3.0)).to_string(),
            "u3(1.0000, 2.0000, 3.0000)"
        );
        assert_eq!(Gate::Rzz(Angle::sym(ParamId(0))).to_string(), "rzz(p0)");
        assert_eq!(
            Gate::Rx(Angle::sym(ParamId(1)).scaled(2.0)).to_string(),
            "rx(2.0000*p1)"
        );
    }

    #[test]
    fn parametric_queries_and_binding() {
        let g = Gate::Rzz(Angle::sym(ParamId(0)).neg());
        assert!(g.is_parametric());
        assert!(!Gate::Rzz(a(0.4)).is_parametric());
        assert!(!Gate::Cnot.is_parametric());
        let vals = ParamValues::new(vec![0.4]);
        assert_eq!(g.bound(&vals).unwrap(), Gate::Rzz(a(-0.4)));
        // symbolic inverse stays symbolic with negated scale
        assert_eq!(
            g.inverse().bound(&vals).unwrap(),
            Gate::Rzz(a(0.4)),
            "inverse of bound == bound of inverse"
        );
    }

    #[test]
    #[should_panic(expected = "symbolic")]
    fn matrix_of_parametric_gate_panics() {
        let _ = Gate::Rzz(Angle::sym(ParamId(0))).matrix4();
    }

    #[test]
    fn swap_matrix_swaps() {
        let m = Gate::Swap.matrix4();
        // |01> (index 1) -> |10> (index 2)
        assert_eq!(m[2][1], ONE);
        assert_eq!(m[1][2], ONE);
    }
}
