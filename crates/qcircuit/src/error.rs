use std::error::Error;
use std::fmt;

/// Error type for circuit construction and transformation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit index `>= num_qubits`.
    QubitOutOfBounds {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// A two-qubit gate was applied to the same qubit twice.
    DuplicateOperand(usize),
    /// Two circuits with mismatched qubit counts were combined.
    SizeMismatch {
        /// Qubit count of the receiving circuit.
        expected: usize,
        /// Qubit count of the appended circuit.
        found: usize,
    },
    /// A gate has no decomposition into the requested basis.
    NotInBasis(String),
    /// A symbolic angle referenced a parameter not covered by the supplied
    /// values.
    UnboundParameter {
        /// The referenced parameter id.
        param: u32,
        /// How many values were supplied.
        provided: usize,
    },
    /// `bind` was called with the wrong number of parameter values.
    ParamCountMismatch {
        /// The circuit's declared parameter count.
        expected: usize,
        /// The number of values supplied.
        found: usize,
    },
    /// Two circuits with conflicting parameter tables were combined.
    ParamTableMismatch {
        /// Parameter count of the receiving circuit.
        expected: usize,
        /// Parameter count of the appended circuit.
        found: usize,
    },
    /// A numeric export (e.g. QASM) encountered a symbolic angle; bind the
    /// circuit first.
    SymbolicAngle {
        /// Mnemonic of the offending gate.
        gate: &'static str,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfBounds { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of bounds for circuit with {num_qubits} qubits"
                )
            }
            CircuitError::DuplicateOperand(q) => {
                write!(f, "two-qubit gate applied twice to qubit {q}")
            }
            CircuitError::SizeMismatch { expected, found } => {
                write!(
                    f,
                    "circuit size mismatch: expected {expected} qubits, found {found}"
                )
            }
            CircuitError::NotInBasis(name) => {
                write!(f, "gate {name} has no decomposition into the target basis")
            }
            CircuitError::UnboundParameter { param, provided } => {
                write!(
                    f,
                    "parameter p{param} is unbound ({provided} values provided)"
                )
            }
            CircuitError::ParamCountMismatch { expected, found } => {
                write!(
                    f,
                    "parameter count mismatch: circuit declares {expected}, got {found} values"
                )
            }
            CircuitError::ParamTableMismatch { expected, found } => {
                write!(
                    f,
                    "conflicting parameter tables: {expected} vs {found} declared parameters"
                )
            }
            CircuitError::SymbolicAngle { gate } => {
                write!(
                    f,
                    "gate {gate} has a symbolic angle; bind the circuit before exporting"
                )
            }
        }
    }
}

impl Error for CircuitError {}
