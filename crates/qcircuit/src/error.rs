use std::error::Error;
use std::fmt;

/// Error type for circuit construction and transformation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit index `>= num_qubits`.
    QubitOutOfBounds {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// A two-qubit gate was applied to the same qubit twice.
    DuplicateOperand(usize),
    /// Two circuits with mismatched qubit counts were combined.
    SizeMismatch {
        /// Qubit count of the receiving circuit.
        expected: usize,
        /// Qubit count of the appended circuit.
        found: usize,
    },
    /// A gate has no decomposition into the requested basis.
    NotInBasis(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfBounds { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of bounds for circuit with {num_qubits} qubits"
                )
            }
            CircuitError::DuplicateOperand(q) => {
                write!(f, "two-qubit gate applied twice to qubit {q}")
            }
            CircuitError::SizeMismatch { expected, found } => {
                write!(
                    f,
                    "circuit size mismatch: expected {expected} qubits, found {found}"
                )
            }
            CircuitError::NotInBasis(name) => {
                write!(f, "gate {name} has no decomposition into the target basis")
            }
        }
    }
}

impl Error for CircuitError {}
