//! Quantum-circuit intermediate representation for the QAOA compiler.
//!
//! This crate plays the role Qiskit's `QuantumCircuit` plays in the MICRO
//! 2020 paper: it defines the gate set, the circuit container, the
//! concurrency-layer scheduler that determines circuit *depth* (the paper's
//! primary quality metric), gate decomposition into hardware basis gates,
//! and commutation rules for the `CPHASE`/ZZ-interaction gates whose
//! reorderability the paper exploits.
//!
//! # Terminology
//!
//! The paper calls the two-qubit cost-layer gate "CPHASE". Its Figure 1(d)
//! decomposition (`CNOT · RZ(γ) · CNOT`) identifies it as the ZZ-interaction
//! `exp(-i γ/2 Z⊗Z)`, which this crate names [`Gate::Rzz`]. The true
//! controlled-phase `diag(1, 1, 1, e^{iλ})` is also provided as
//! [`Gate::CPhase`]; both commute with each other and decompose into two
//! CNOTs, so every result in the paper is insensitive to the choice.
//!
//! # Examples
//!
//! Build the intelligently ordered circuit of Figure 1(c) and check its
//! depth (time steps including measurement):
//!
//! ```
//! use qcircuit::Circuit;
//!
//! let mut c = Circuit::new(4);
//! let gamma = 0.7;
//! for q in 0..4 {
//!     c.h(q);
//! }
//! // layer-1..3 of Figure 1(c): three layers of two parallel CPHASEs
//! for (a, b) in [(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)] {
//!     c.rzz(gamma, a, b);
//! }
//! for q in 0..4 {
//!     c.rx(2.0 * 0.3, q);
//! }
//! c.measure_all();
//! assert_eq!(c.depth(), 6); // H + 3 CPHASE layers + RX + measure
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod error;
mod gate;

pub mod basis;
pub mod commute;
pub mod draw;
pub mod kernel;
pub mod layers;
pub mod math;
pub mod metrics;
pub mod param;
pub mod qasm;
mod qasm_parse;

pub use circuit::{Circuit, Instruction};
pub use error::CircuitError;
pub use gate::Gate;
pub use param::{Angle, ParamId, ParamTable, ParamValues};
