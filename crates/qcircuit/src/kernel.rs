//! Simulation-kernel classification of the gate set.
//!
//! Dense statevector/density simulators spend almost all their time
//! streaming amplitudes through per-gate update rules. For the gates QAOA
//! circuits are made of, the generic 2×2/4×4 matrix application is gross
//! overkill: the cost layer is *diagonal* (pure phase multiplication), the
//! mixer is a structured 2×2, and the routing gates (CNOT/SWAP) are index
//! permutations. [`Gate::kernel`] classifies every gate into the cheapest
//! update rule that implements it exactly, so a simulator can dispatch once
//! per instruction instead of pattern-matching gate-by-gate — and so the
//! classification is testable against [`Gate::matrix2`]/[`Gate::matrix4`]
//! in one place.

use crate::math::{Complex, Matrix2, Matrix4, ONE};
use crate::Gate;

/// The cheapest exact update rule for a gate, from a simulator's point of
/// view.
///
/// Conventions match the matrix accessors: for two-qubit kernels the
/// **first operand is the more-significant index**, so a diagonal entry for
/// basis bits `(a, b)` of operands `(q0, q1)` lives at `phases[a << 1 | b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// No-op (`Id`).
    Identity,
    /// Single-qubit diagonal `diag(z0, z1)`: each amplitude is multiplied
    /// by `z0` or `z1` according to its basis bit. Z, S(dg), T(dg), RZ, U1.
    Phase1 {
        /// Phase applied where the qubit's bit is 0.
        z0: Complex,
        /// Phase applied where the qubit's bit is 1.
        z1: Complex,
    },
    /// Single-qubit anti-diagonal: the amplitude pair is swapped with
    /// phases, `a0' = z0·a1`, `a1' = z1·a0`. X is `(1, 1)`, Y is `(-i, i)`.
    Flip1 {
        /// Factor on the incoming `|1⟩` amplitude.
        z0: Complex,
        /// Factor on the incoming `|0⟩` amplitude.
        z1: Complex,
    },
    /// Two-qubit diagonal `diag(phases)` indexed by `(bit_q0 << 1) | bit_q1`.
    /// RZZ, CPHASE, CZ.
    Phase2 {
        /// The four diagonal entries.
        phases: [Complex; 4],
    },
    /// CNOT: swap the target pair where the control bit is set.
    ControlledFlip,
    /// SWAP: exchange the two operand bits of every basis index.
    Swap,
    /// Genuinely dense single-qubit unitary (H, RX, RY, U2, U3).
    Dense1(Matrix2),
    /// Genuinely dense two-qubit unitary (none in the current gate set;
    /// kept so new gates degrade gracefully instead of panicking).
    Dense2(Matrix4),
    /// Computational-basis measurement — not a unitary update at all.
    Measure,
}

impl Kernel {
    /// Whether the kernel is a pure diagonal phase multiplication
    /// ([`Kernel::Identity`], [`Kernel::Phase1`] or [`Kernel::Phase2`]) —
    /// the class a simulator can fuse into a single amplitude pass.
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Kernel::Identity | Kernel::Phase1 { .. } | Kernel::Phase2 { .. }
        )
    }
}

impl Gate {
    /// Classifies the gate into its cheapest exact simulation kernel.
    ///
    /// The mapping is total: every gate (including [`Gate::Measure`])
    /// returns a kernel, and the `kernel_matches_matrices` test pins each
    /// unitary kernel against the corresponding dense matrix.
    ///
    /// # Panics
    ///
    /// Panics for parametric (unbound) gates — kernels are concrete
    /// amplitude updates; bind the circuit first.
    pub fn kernel(&self) -> Kernel {
        match *self {
            Gate::Id => Kernel::Identity,
            Gate::Z => Kernel::Phase1 { z0: ONE, z1: -ONE },
            Gate::S => Kernel::Phase1 {
                z0: ONE,
                z1: crate::math::I,
            },
            Gate::Sdg => Kernel::Phase1 {
                z0: ONE,
                z1: -crate::math::I,
            },
            Gate::T => Kernel::Phase1 {
                z0: ONE,
                z1: Complex::cis(std::f64::consts::FRAC_PI_4),
            },
            Gate::Tdg => Kernel::Phase1 {
                z0: ONE,
                z1: Complex::cis(-std::f64::consts::FRAC_PI_4),
            },
            Gate::Rz(t) => {
                let t = t.value();
                Kernel::Phase1 {
                    z0: Complex::cis(-t / 2.0),
                    z1: Complex::cis(t / 2.0),
                }
            }
            Gate::U1(l) => Kernel::Phase1 {
                z0: ONE,
                z1: Complex::cis(l.value()),
            },
            Gate::X => Kernel::Flip1 { z0: ONE, z1: ONE },
            Gate::Y => Kernel::Flip1 {
                z0: -crate::math::I,
                z1: crate::math::I,
            },
            Gate::Cz => Kernel::Phase2 {
                phases: [ONE, ONE, ONE, -ONE],
            },
            Gate::CPhase(l) => Kernel::Phase2 {
                phases: [ONE, ONE, ONE, Complex::cis(l.value())],
            },
            Gate::Rzz(t) => {
                let t = t.value();
                let same = Complex::cis(-t / 2.0);
                let diff = Complex::cis(t / 2.0);
                Kernel::Phase2 {
                    phases: [same, diff, diff, same],
                }
            }
            Gate::Cnot => Kernel::ControlledFlip,
            Gate::Swap => Kernel::Swap,
            Gate::Measure => Kernel::Measure,
            g if g.arity() == 1 => Kernel::Dense1(g.matrix2()),
            g => Kernel::Dense2(g.matrix4()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{matmul2, ZERO};

    /// Reconstructs the dense 2×2 matrix a single-qubit kernel implements.
    fn kernel_matrix2(k: &Kernel) -> Matrix2 {
        match *k {
            Kernel::Identity => crate::math::identity2(),
            Kernel::Phase1 { z0, z1 } => [[z0, ZERO], [ZERO, z1]],
            Kernel::Flip1 { z0, z1 } => [[ZERO, z0], [z1, ZERO]],
            Kernel::Dense1(m) => m,
            _ => panic!("not a 1q kernel"),
        }
    }

    #[test]
    fn kernel_matches_matrices() {
        let one_q = [
            Gate::Id,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx((0.7).into()),
            Gate::Ry((-1.2).into()),
            Gate::Rz((0.35).into()),
            Gate::U1((2.1).into()),
            Gate::U2((0.4).into(), (-0.6).into()),
            Gate::U3((1.0).into(), (0.2).into(), (-0.9).into()),
        ];
        for g in one_q {
            let want = g.matrix2();
            let got = kernel_matrix2(&g.kernel());
            for r in 0..2 {
                for c in 0..2 {
                    assert!(
                        got[r][c].approx_eq(want[r][c], 1e-12),
                        "{g} entry ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn two_qubit_kernels_match_matrix4() {
        for g in [
            Gate::Cz,
            Gate::CPhase((0.8).into()),
            Gate::Rzz((-1.3).into()),
        ] {
            let want = g.matrix4();
            match g.kernel() {
                Kernel::Phase2 { phases } => {
                    for (i, p) in phases.iter().enumerate() {
                        assert!(p.approx_eq(want[i][i], 1e-12), "{g} diag {i}");
                        for (j, w) in want[i].iter().enumerate() {
                            if j != i {
                                assert_eq!(*w, ZERO, "{g} must be diagonal");
                            }
                        }
                    }
                }
                k => panic!("{g} should classify as Phase2, got {k:?}"),
            }
        }
        assert_eq!(Gate::Cnot.kernel(), Kernel::ControlledFlip);
        assert_eq!(Gate::Swap.kernel(), Kernel::Swap);
    }

    #[test]
    fn diagonal_classification_agrees_with_gate_predicate() {
        let gates = [
            Gate::Id,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::T,
            Gate::Rx((0.3).into()),
            Gate::Rz((0.3).into()),
            Gate::U1((0.3).into()),
            Gate::Cnot,
            Gate::Cz,
            Gate::CPhase((0.3).into()),
            Gate::Rzz((0.3).into()),
            Gate::Swap,
        ];
        for g in gates {
            assert_eq!(
                g.kernel().is_diagonal(),
                g.is_diagonal(),
                "kernel/diagonal mismatch for {g}"
            );
        }
    }

    #[test]
    fn flip_kernels_compose_like_matrices() {
        // X·Y as kernels equals the matrix product (up to the kernels'
        // exact phase bookkeeping).
        let x = kernel_matrix2(&Gate::X.kernel());
        let y = kernel_matrix2(&Gate::Y.kernel());
        let want = matmul2(&Gate::X.matrix2(), &Gate::Y.matrix2());
        let got = matmul2(&x, &y);
        for r in 0..2 {
            for c in 0..2 {
                assert!(got[r][c].approx_eq(want[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn powu_matches_repeated_multiplication() {
        let z = Complex::cis(0.37);
        let mut acc = ONE;
        for n in 0..20u32 {
            assert!(z.powu(n).approx_eq(acc, 1e-12), "power {n}");
            acc *= z;
        }
    }
}
