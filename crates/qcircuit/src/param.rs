//! Symbolic gate parameters: the compile-once / rebind-many IR.
//!
//! The paper's whole compile flow — mapping, gate ordering, routing —
//! depends only on the problem graph and the device, never on the QAOA
//! angles (γ, β). Representing angles symbolically lets a circuit be
//! compiled *once* per problem/device pair and re-bound per optimizer
//! iteration at the cost of a per-gate substitution.
//!
//! An [`Angle`] is either a concrete radian value ([`Angle::Const`]) or an
//! affine use `scale · θ_param` of a shared parameter ([`Angle::Sym`]).
//! The affine form is exactly what QAOA needs: the cost layer applies
//! `Rzz(-γ)` / `Rzz(2γJ)` and the mixer `Rx(2β)`, all scalar multiples of
//! the `2p` shared parameters. [`ParamTable`] names a circuit's parameters
//! and [`ParamValues`] supplies one concrete assignment for
//! [`crate::Circuit::bind`].
//!
//! # Examples
//!
//! ```
//! use qcircuit::{Angle, Circuit, ParamValues};
//!
//! let mut c = Circuit::new(2);
//! let gamma = c.declare_param("gamma");
//! let beta = c.declare_param("beta");
//! c.rzz(Angle::sym(gamma).neg(), 0, 1);
//! c.rx(Angle::sym(beta).scaled(2.0), 0);
//! assert!(c.is_parametric());
//!
//! let bound = c.bind(&ParamValues::new(vec![0.4, 0.3]))?;
//! assert!(!bound.is_parametric());
//! # Ok::<(), qcircuit::CircuitError>(())
//! ```

use std::fmt;

use crate::CircuitError;

/// Identifies one shared parameter of a circuit (an index into its
/// [`ParamTable`] and into the [`ParamValues`] given to `bind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub u32);

impl ParamId {
    /// The table/values index this id addresses.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A gate angle: concrete radians, or an affine use of a shared parameter.
///
/// `Sym { param, scale }` denotes `scale · θ_param`. The representation is
/// deliberately minimal — QAOA never needs sums of parameters or constant
/// offsets, and keeping `Angle` `Copy` keeps [`crate::Instruction`] `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Angle {
    /// A concrete angle in radians.
    Const(f64),
    /// `scale · θ_param` for a parameter of the circuit's [`ParamTable`].
    Sym {
        /// Which shared parameter.
        param: ParamId,
        /// Scalar multiplier applied on binding.
        scale: f64,
    },
}

impl Angle {
    /// The symbolic angle `1.0 · θ_param`.
    pub fn sym(param: ParamId) -> Angle {
        Angle::Sym { param, scale: 1.0 }
    }

    /// Whether the angle references a parameter (i.e. is not yet bound).
    pub fn is_sym(&self) -> bool {
        matches!(self, Angle::Sym { .. })
    }

    /// The concrete value, if the angle is a constant.
    pub fn const_value(&self) -> Option<f64> {
        match *self {
            Angle::Const(v) => Some(v),
            Angle::Sym { .. } => None,
        }
    }

    /// The parameter referenced by a symbolic angle.
    pub fn param(&self) -> Option<ParamId> {
        match *self {
            Angle::Const(_) => None,
            Angle::Sym { param, .. } => Some(param),
        }
    }

    /// The concrete value of a bound angle.
    ///
    /// # Panics
    ///
    /// Panics for symbolic angles. Numeric consumers (matrices, simulation
    /// kernels, QASM export) require bound circuits; route through
    /// [`crate::Circuit::bind`] first.
    pub fn value(&self) -> f64 {
        match *self {
            Angle::Const(v) => v,
            Angle::Sym { param, .. } => panic!(
                "angle is symbolic ({param}): bind the circuit before evaluating numerically"
            ),
        }
    }

    /// The angle multiplied by `k` (affine in the parameter, so symbolic
    /// angles stay symbolic).
    pub fn scaled(&self, k: f64) -> Angle {
        match *self {
            Angle::Const(v) => Angle::Const(v * k),
            Angle::Sym { param, scale } => Angle::Sym {
                param,
                scale: scale * k,
            },
        }
    }

    /// The negated angle.
    pub fn neg(&self) -> Angle {
        self.scaled(-1.0)
    }

    /// Substitutes parameter values, producing a concrete angle.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] if the referenced
    /// parameter is not covered by `values`.
    pub fn bind(&self, values: &ParamValues) -> Result<Angle, CircuitError> {
        match *self {
            Angle::Const(v) => Ok(Angle::Const(v)),
            Angle::Sym { param, scale } => match values.get(param) {
                Some(v) => Ok(Angle::Const(scale * v)),
                None => Err(CircuitError::UnboundParameter {
                    param: param.0,
                    provided: values.len(),
                }),
            },
        }
    }
}

impl From<f64> for Angle {
    fn from(v: f64) -> Angle {
        Angle::Const(v)
    }
}

impl From<ParamId> for Angle {
    fn from(param: ParamId) -> Angle {
        Angle::sym(param)
    }
}

impl fmt::Display for Angle {
    /// Constants render exactly like `f64` (honouring any requested
    /// precision, e.g. `{:.4}`); symbolic angles render as `p0`, `2*p0`,
    /// `-1*p0`, with the scale formatted at the same precision.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Angle::Const(v) => v.fmt(f),
            Angle::Sym { param, scale } => {
                if scale == 1.0 {
                    write!(f, "{param}")
                } else {
                    scale.fmt(f)?;
                    write!(f, "*{param}")
                }
            }
        }
    }
}

/// The declared parameters of a circuit: an ordered list of names, indexed
/// by [`ParamId`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParamTable {
    names: Vec<String>,
}

impl ParamTable {
    /// An empty table.
    pub fn new() -> Self {
        ParamTable::default()
    }

    /// Declares a new parameter, returning its id.
    pub fn declare(&mut self, name: impl Into<String>) -> ParamId {
        let id = ParamId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// The number of declared parameters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no parameters are declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of a parameter, if declared.
    pub fn name(&self, id: ParamId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Iterates over `(id, name)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ParamId(i as u32), n.as_str()))
    }

    /// Merges another table into this one for circuit stitching: an empty
    /// side adopts the other, identical tables merge trivially.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ParamTableMismatch`] when both sides declare
    /// parameters and the declarations differ — stitching would silently
    /// alias unrelated parameters.
    pub fn merge(&mut self, other: &ParamTable) -> Result<(), CircuitError> {
        if other.is_empty() || self == other {
            return Ok(());
        }
        if self.is_empty() {
            *self = other.clone();
            return Ok(());
        }
        Err(CircuitError::ParamTableMismatch {
            expected: self.len(),
            found: other.len(),
        })
    }
}

/// One concrete assignment of values to a circuit's parameters, in
/// [`ParamId`] order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamValues {
    values: Vec<f64>,
}

impl ParamValues {
    /// Wraps a value vector (index `i` binds `ParamId(i)`).
    pub fn new(values: Vec<f64>) -> Self {
        ParamValues { values }
    }

    /// The value bound to `id`, if provided.
    pub fn get(&self, id: ParamId) -> Option<f64> {
        self.values.get(id.index()).copied()
    }

    /// The number of provided values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values are provided.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values as a slice, in [`ParamId`] order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

impl From<Vec<f64>> for ParamValues {
    fn from(values: Vec<f64>) -> Self {
        ParamValues::new(values)
    }
}

impl From<&[f64]> for ParamValues {
    fn from(values: &[f64]) -> Self {
        ParamValues::new(values.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_angles_round_trip() {
        let a = Angle::from(0.5);
        assert!(!a.is_sym());
        assert_eq!(a.const_value(), Some(0.5));
        assert_eq!(a.value(), 0.5);
        assert_eq!(a.scaled(2.0), Angle::Const(1.0));
        assert_eq!(a.neg(), Angle::Const(-0.5));
    }

    #[test]
    fn sym_angles_scale_affinely() {
        let a = Angle::sym(ParamId(3));
        assert!(a.is_sym());
        assert_eq!(a.const_value(), None);
        assert_eq!(a.param(), Some(ParamId(3)));
        let b = a.scaled(2.0).neg();
        assert_eq!(
            b,
            Angle::Sym {
                param: ParamId(3),
                scale: -2.0
            }
        );
    }

    #[test]
    #[should_panic(expected = "symbolic")]
    fn value_panics_on_sym() {
        let _ = Angle::sym(ParamId(0)).value();
    }

    #[test]
    fn bind_substitutes_scaled_value() {
        let vals = ParamValues::new(vec![0.4, 0.3]);
        let a = Angle::sym(ParamId(1)).scaled(2.0);
        assert_eq!(a.bind(&vals), Ok(Angle::Const(0.6)));
        assert_eq!(Angle::Const(1.5).bind(&vals), Ok(Angle::Const(1.5)));
        assert_eq!(
            Angle::sym(ParamId(2)).bind(&vals),
            Err(CircuitError::UnboundParameter {
                param: 2,
                provided: 2
            })
        );
    }

    #[test]
    fn display_honours_precision() {
        assert_eq!(format!("{:.4}", Angle::Const(0.5)), "0.5000");
        assert_eq!(
            format!("{}", Angle::Const(0.123456789012345)),
            "0.123456789012345"
        );
        assert_eq!(format!("{}", Angle::sym(ParamId(0))), "p0");
        assert_eq!(
            format!("{:.2}", Angle::sym(ParamId(1)).scaled(-2.0)),
            "-2.00*p1"
        );
    }

    #[test]
    fn table_merge_rules() {
        let mut a = ParamTable::new();
        let g = a.declare("gamma");
        let b0 = a.declare("beta");
        assert_eq!((g, b0), (ParamId(0), ParamId(1)));
        assert_eq!(a.name(ParamId(1)), Some("beta"));

        let mut empty = ParamTable::new();
        empty.merge(&a).unwrap();
        assert_eq!(empty, a);

        let mut same = a.clone();
        same.merge(&a).unwrap();
        assert_eq!(same.len(), 2);

        let mut other = ParamTable::new();
        other.declare("x");
        assert!(matches!(
            other.merge(&a),
            Err(CircuitError::ParamTableMismatch { .. })
        ));
    }
}
