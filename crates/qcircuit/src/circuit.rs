use std::fmt;

use crate::param::{Angle, ParamId, ParamTable, ParamValues};
use crate::{CircuitError, Gate};

/// One gate application: a [`Gate`] plus its qubit operands.
///
/// For two-qubit gates the operand order is `(first, second)` where the
/// first operand is the control for [`Gate::Cnot`] / [`Gate::CPhase`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    gate: Gate,
    q0: u32,
    q1: u32,
}

impl Instruction {
    /// Creates a single-qubit instruction.
    ///
    /// # Panics
    ///
    /// Panics if `gate.arity() != 1`.
    pub fn one(gate: Gate, q: usize) -> Self {
        assert_eq!(
            gate.arity(),
            1,
            "{} is not a single-qubit gate",
            gate.name()
        );
        Instruction {
            gate,
            q0: q as u32,
            q1: u32::MAX,
        }
    }

    /// Creates a two-qubit instruction.
    ///
    /// # Panics
    ///
    /// Panics if `gate.arity() != 2` or `a == b`.
    pub fn two(gate: Gate, a: usize, b: usize) -> Self {
        assert_eq!(gate.arity(), 2, "{} is not a two-qubit gate", gate.name());
        assert_ne!(a, b, "two-qubit gate on duplicate operand {a}");
        Instruction {
            gate,
            q0: a as u32,
            q1: b as u32,
        }
    }

    /// The gate being applied.
    pub fn gate(&self) -> Gate {
        self.gate
    }

    /// The qubit operands as a vector (one or two entries).
    pub fn qubit_vec(&self) -> Vec<usize> {
        if self.gate.arity() == 1 {
            vec![self.q0 as usize]
        } else {
            vec![self.q0 as usize, self.q1 as usize]
        }
    }

    /// The first operand (target of 1q gates, control of CNOT).
    pub fn q0(&self) -> usize {
        self.q0 as usize
    }

    /// The second operand of a two-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics for single-qubit instructions.
    pub fn q1(&self) -> usize {
        assert_eq!(self.gate.arity(), 2, "q1() on single-qubit instruction");
        self.q1 as usize
    }

    /// Whether the instruction acts on `q`.
    pub fn acts_on(&self, q: usize) -> bool {
        self.q0 as usize == q || (self.gate.arity() == 2 && self.q1 as usize == q)
    }

    /// Whether the instruction shares at least one qubit with `other`.
    pub fn overlaps(&self, other: &Instruction) -> bool {
        other.acts_on(self.q0 as usize)
            || (self.gate.arity() == 2 && other.acts_on(self.q1 as usize))
    }

    /// Rewrites qubit indices through `map` (e.g. a logical→physical
    /// layout), returning the remapped instruction.
    ///
    /// # Panics
    ///
    /// Panics if `map` returns identical indices for the two operands of a
    /// two-qubit gate.
    pub fn remap<F: Fn(usize) -> usize>(&self, map: F) -> Instruction {
        if self.gate.arity() == 1 {
            Instruction::one(self.gate, map(self.q0 as usize))
        } else {
            Instruction::two(self.gate, map(self.q0 as usize), map(self.q1 as usize))
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.gate.arity() == 1 {
            write!(f, "{} q{}", self.gate, self.q0)
        } else {
            write!(f, "{} q{}, q{}", self.gate, self.q0, self.q1)
        }
    }
}

/// An ordered sequence of gate applications over `num_qubits` qubits.
///
/// The instruction order is program order; concurrency ("layers", the
/// paper's time steps) is derived on demand by [`crate::layers`]. This
/// mirrors how the paper's methodologies work: IP/IC/VIC choose the
/// *sequence* of CPHASE gates handed to the backend, and the backend's
/// layer partitioner extracts parallelism from that sequence.
///
/// # Examples
///
/// ```
/// use qcircuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cx(0, 1);
/// c.measure_all();
/// assert_eq!(c.len(), 4);
/// assert_eq!(c.count_gate("cx"), 1);
/// assert_eq!(c.depth(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
    params: ParamTable,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            instructions: Vec::new(),
            params: ParamTable::new(),
        }
    }

    /// Declares a named circuit parameter, returning its id for use in
    /// symbolic [`Angle`]s.
    pub fn declare_param(&mut self, name: impl Into<String>) -> ParamId {
        self.params.declare(name)
    }

    /// The circuit's declared parameters.
    pub fn param_table(&self) -> &ParamTable {
        &self.params
    }

    /// Replaces the circuit's parameter table (used by builders that emit
    /// instructions referencing an externally constructed table).
    pub fn set_param_table(&mut self, params: ParamTable) {
        self.params = params;
    }

    /// The number of declared parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Whether any instruction carries a symbolic (unbound) angle.
    pub fn is_parametric(&self) -> bool {
        self.instructions.iter().any(|i| i.gate().is_parametric())
    }

    /// Substitutes parameter values into every symbolic angle, producing a
    /// fully bound circuit (empty parameter table).
    ///
    /// This is the whole of "rebinding": a per-gate angle substitution with
    /// no mapping, ordering or routing work.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ParamCountMismatch`] if the circuit declares
    /// parameters and `values` has a different length, and
    /// [`CircuitError::UnboundParameter`] if an instruction references a
    /// parameter `values` does not cover.
    pub fn bind(&self, values: &ParamValues) -> Result<Circuit, CircuitError> {
        if !self.params.is_empty() && values.len() != self.params.len() {
            return Err(CircuitError::ParamCountMismatch {
                expected: self.params.len(),
                found: values.len(),
            });
        }
        // Bulk-copy the instruction stream and rewrite only the symbolic
        // gates in place: binding is on the optimizer's per-iteration hot
        // path, and most instructions (H, CNOT, SWAP, measure) carry no
        // angle at all.
        let mut out = Circuit {
            num_qubits: self.num_qubits,
            instructions: self.instructions.clone(),
            params: ParamTable::new(),
        };
        for instr in &mut out.instructions {
            if instr.gate.is_parametric() {
                instr.gate = instr.gate.bound(values)?;
            }
        }
        Ok(out)
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of instructions (including measurements).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instructions in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Validates operands and appends an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfBounds`] for out-of-range operands.
    pub fn push(&mut self, instr: Instruction) -> Result<(), CircuitError> {
        // Validated through q0/q1 directly: `qubit_vec` allocates, and
        // push sits under every gate the compiler emits.
        if instr.q0() >= self.num_qubits {
            return Err(CircuitError::QubitOutOfBounds {
                qubit: instr.q0(),
                num_qubits: self.num_qubits,
            });
        }
        if instr.gate().arity() == 2 && instr.q1() >= self.num_qubits {
            return Err(CircuitError::QubitOutOfBounds {
                qubit: instr.q1(),
                num_qubits: self.num_qubits,
            });
        }
        self.instructions.push(instr);
        Ok(())
    }

    /// Reserves capacity for at least `additional` more instructions.
    ///
    /// The compile path sizes its output buffers up front (spec gate
    /// count plus routing headroom) so layer stitching never reallocates
    /// mid-compile; see [`Circuit::capacity`] for the pin.
    pub fn reserve(&mut self, additional: usize) {
        self.instructions.reserve(additional);
    }

    /// The number of instructions the circuit can hold without
    /// reallocating.
    pub fn capacity(&self) -> usize {
        self.instructions.capacity()
    }

    /// Removes all instructions, retaining the allocated capacity. The
    /// qubit count and parameter table are unchanged — this is the reset
    /// used by per-layer scratch circuits in the incremental compiler.
    pub fn clear(&mut self) {
        self.instructions.clear();
    }

    fn push_one(&mut self, gate: Gate, q: usize) {
        self.push(Instruction::one(gate, q))
            .unwrap_or_else(|e| panic!("invalid gate operand: {e}"));
    }

    fn push_two(&mut self, gate: Gate, a: usize, b: usize) {
        self.push(Instruction::two(gate, a, b))
            .unwrap_or_else(|e| panic!("invalid gate operand: {e}"));
    }

    /// Appends a Hadamard gate.
    ///
    /// # Panics
    ///
    /// This and the other builder shorthands panic on out-of-range qubits;
    /// use [`Circuit::push`] for fallible insertion.
    pub fn h(&mut self, q: usize) {
        self.push_one(Gate::H, q);
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: usize) {
        self.push_one(Gate::X, q);
    }

    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, q: usize) {
        self.push_one(Gate::Y, q);
    }

    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: usize) {
        self.push_one(Gate::Z, q);
    }

    /// Appends an `Rx(theta)` rotation (concrete or symbolic angle).
    pub fn rx(&mut self, theta: impl Into<Angle>, q: usize) {
        self.push_one(Gate::Rx(theta.into()), q);
    }

    /// Appends an `Ry(theta)` rotation.
    pub fn ry(&mut self, theta: impl Into<Angle>, q: usize) {
        self.push_one(Gate::Ry(theta.into()), q);
    }

    /// Appends an `Rz(theta)` rotation.
    pub fn rz(&mut self, theta: impl Into<Angle>, q: usize) {
        self.push_one(Gate::Rz(theta.into()), q);
    }

    /// Appends a `U1(lambda)` phase gate.
    pub fn u1(&mut self, lambda: impl Into<Angle>, q: usize) {
        self.push_one(Gate::U1(lambda.into()), q);
    }

    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.push_two(Gate::Cnot, c, t);
    }

    /// Appends a controlled-Z gate.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.push_two(Gate::Cz, a, b);
    }

    /// Appends a controlled-phase gate `diag(1,1,1,e^{iλ})`.
    pub fn cp(&mut self, lambda: impl Into<Angle>, a: usize, b: usize) {
        self.push_two(Gate::CPhase(lambda.into()), a, b);
    }

    /// Appends the commuting ZZ-interaction (the paper's "CPHASE") gate.
    pub fn rzz(&mut self, theta: impl Into<Angle>, a: usize, b: usize) {
        self.push_two(Gate::Rzz(theta.into()), a, b);
    }

    /// Appends a SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.push_two(Gate::Swap, a, b);
    }

    /// Appends a measurement of qubit `q`.
    pub fn measure(&mut self, q: usize) {
        self.push_one(Gate::Measure, q);
    }

    /// Appends a measurement of every qubit.
    pub fn measure_all(&mut self) {
        for q in 0..self.num_qubits {
            self.measure(q);
        }
    }

    /// Appends all instructions of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SizeMismatch`] if qubit counts differ and
    /// [`CircuitError::ParamTableMismatch`] if both circuits declare
    /// conflicting parameter tables (an empty side adopts the other). Used
    /// by IC/VIC to *stitch* compiled partial circuits (paper §IV-C).
    pub fn append(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        if other.num_qubits != self.num_qubits {
            return Err(CircuitError::SizeMismatch {
                expected: self.num_qubits,
                found: other.num_qubits,
            });
        }
        self.params.merge(&other.params)?;
        self.instructions.extend_from_slice(&other.instructions);
        Ok(())
    }

    /// The circuit depth: the number of concurrency layers (time steps)
    /// when gates are scheduled as soon as possible in program order.
    ///
    /// Matches the paper's depth metric — the Figure 1(b) random circuit
    /// has depth 9 and the Figure 1(c) reordered circuit depth 6, both
    /// counting the final measurements.
    pub fn depth(&self) -> usize {
        self.depth_from(0)
    }

    /// The depth of the instruction suffix starting at `start`, computed
    /// as if those instructions formed a circuit of their own.
    ///
    /// The incremental compiler emits routed layers directly into its
    /// stitched output circuit; this reports the depth of one such
    /// fragment — identical to the depth the fragment would have had as
    /// a standalone partial circuit.
    ///
    /// # Panics
    ///
    /// Panics if `start > self.len()`.
    pub fn depth_from(&self, start: usize) -> usize {
        let mut frontier = Vec::new();
        self.depth_from_with(start, &mut frontier)
    }

    /// [`Circuit::depth_from`] over a caller-supplied frontier buffer —
    /// the incremental router computes a fragment depth per routed layer,
    /// and reusing the buffer keeps that path allocation-free.
    pub fn depth_from_with(&self, start: usize, frontier: &mut Vec<usize>) -> usize {
        // Hot in telemetry and explain paths: track operands via
        // q0/q1/arity directly instead of allocating `qubit_vec` twice
        // per instruction.
        frontier.clear();
        frontier.resize(self.num_qubits, 0);
        let mut depth = 0;
        for instr in &self.instructions[start..] {
            let q0 = instr.q0();
            let level = if instr.gate().arity() == 1 {
                frontier[q0] + 1
            } else {
                frontier[q0].max(frontier[instr.q1()]) + 1
            };
            frontier[q0] = level;
            if instr.gate().arity() != 1 {
                frontier[instr.q1()] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    /// Total number of instructions excluding measurements — the paper's
    /// *gate-count* metric is reported on the basis-decomposed circuit.
    pub fn gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate().is_unitary())
            .count()
    }

    /// The number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate().arity() == 2)
            .count()
    }

    /// The number of instructions whose gate mnemonic equals `name`.
    pub fn count_gate(&self, name: &str) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate().name() == name)
            .count()
    }

    /// Maps every qubit index through `map`, e.g. to apply an initial
    /// logical→physical layout.
    pub fn remapped<F: Fn(usize) -> usize>(&self, num_qubits: usize, map: F) -> Circuit {
        let mut out = Circuit::new(num_qubits);
        out.params = self.params.clone();
        for instr in &self.instructions {
            out.push(instr.remap(&map))
                .unwrap_or_else(|e| panic!("remap produced invalid instruction: {e}"));
        }
        out
    }

    /// The reverse circuit: inverses of the unitary gates in reverse order.
    /// Measurements are dropped. Used by reverse-traversal mapping
    /// refinement.
    pub fn reversed(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        out.params = self.params.clone();
        for instr in self.instructions.iter().rev() {
            if !instr.gate().is_unitary() {
                continue;
            }
            let inv = instr.gate().inverse();
            let rebuilt = if inv.arity() == 1 {
                Instruction::one(inv, instr.q0())
            } else {
                Instruction::two(inv, instr.q0(), instr.q1())
            };
            out.push(rebuilt)
                .expect("reversed instruction stays in range");
        }
        out
    }

    /// Iterates over instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} ops]:",
            self.num_qubits,
            self.len()
        )?;
        for instr in &self.instructions {
            writeln!(f, "  {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_bounds() {
        let mut c = Circuit::new(2);
        assert_eq!(
            c.push(Instruction::one(Gate::H, 2)),
            Err(CircuitError::QubitOutOfBounds {
                qubit: 2,
                num_qubits: 2
            })
        );
        assert!(c.push(Instruction::two(Gate::Cnot, 0, 1)).is_ok());
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic]
    fn duplicate_operand_panics() {
        let _ = Instruction::two(Gate::Cnot, 1, 1);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let _ = Instruction::one(Gate::Cnot, 0);
    }

    #[test]
    fn fig1_random_vs_reordered_depth() {
        let gamma = 0.4;
        let beta = 0.3;
        // circ-1, Figure 1(b): a poorly ordered CPHASE sequence where every
        // consecutive pair shares a qubit, forcing 6 sequential layers
        // (0-based qubits).
        let mut c1 = Circuit::new(4);
        for q in 0..4 {
            c1.h(q);
        }
        for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (0, 3)] {
            c1.rzz(gamma, a, b);
        }
        for q in 0..4 {
            c1.rx(2.0 * beta, q);
        }
        c1.measure_all();
        assert_eq!(c1.depth(), 9);

        // circ-2, Figure 1(c): three dense layers.
        let mut c2 = Circuit::new(4);
        for q in 0..4 {
            c2.h(q);
        }
        for (a, b) in [(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)] {
            c2.rzz(gamma, a, b);
        }
        for q in 0..4 {
            c2.rx(2.0 * beta, q);
        }
        c2.measure_all();
        assert_eq!(c2.depth(), 6);
    }

    #[test]
    fn gate_counts_exclude_measurement() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.measure_all();
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.count_gate("measure"), 2);
        assert_eq!(c.count_gate("h"), 1);
    }

    #[test]
    fn append_checks_size() {
        let mut a = Circuit::new(3);
        let b = Circuit::new(2);
        assert_eq!(
            a.append(&b),
            Err(CircuitError::SizeMismatch {
                expected: 3,
                found: 2
            })
        );
        let mut ok = Circuit::new(3);
        ok.h(1);
        a.append(&ok).unwrap();
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn remap_applies_layout() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let layout = [5usize, 2usize];
        let mapped = c.remapped(6, |q| layout[q]);
        assert_eq!(mapped.instructions()[0].q0(), 5);
        assert_eq!(mapped.instructions()[0].q1(), 2);
    }

    #[test]
    fn reversed_inverts_order_and_gates() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.rz(0.5, 1);
        c.cx(0, 1);
        c.measure_all();
        let r = c.reversed();
        assert_eq!(r.len(), 3); // measurements dropped
        assert_eq!(r.instructions()[0].gate(), Gate::Cnot);
        assert_eq!(r.instructions()[1].gate(), Gate::Rz(Angle::Const(-0.5)));
        assert_eq!(r.instructions()[2].gate(), Gate::H);
    }

    #[test]
    fn bind_substitutes_and_clears_params() {
        let mut c = Circuit::new(2);
        let gamma = c.declare_param("gamma");
        let beta = c.declare_param("beta");
        c.h(0);
        c.rzz(Angle::sym(gamma).neg(), 0, 1);
        c.rx(Angle::sym(beta).scaled(2.0), 0);
        assert!(c.is_parametric());
        assert_eq!(c.num_params(), 2);

        let bound = c.bind(&ParamValues::new(vec![0.4, 0.3])).unwrap();
        assert!(!bound.is_parametric());
        assert_eq!(bound.num_params(), 0);
        assert_eq!(
            bound.instructions()[1].gate(),
            Gate::Rzz(Angle::Const(-0.4))
        );
        assert_eq!(bound.instructions()[2].gate(), Gate::Rx(Angle::Const(0.6)));
        // binding preserves structure: depth and operands are unchanged
        assert_eq!(bound.depth(), c.depth());
        assert_eq!(bound.len(), c.len());
    }

    #[test]
    fn bind_validates_value_count() {
        let mut c = Circuit::new(1);
        let p = c.declare_param("theta");
        c.rx(Angle::sym(p), 0);
        assert_eq!(
            c.bind(&ParamValues::new(vec![0.1, 0.2])),
            Err(CircuitError::ParamCountMismatch {
                expected: 1,
                found: 2
            })
        );
        // undeclared-but-referenced parameter surfaces as UnboundParameter
        let mut loose = Circuit::new(1);
        loose.rx(Angle::sym(ParamId(5)), 0);
        assert_eq!(
            loose.bind(&ParamValues::new(vec![])),
            Err(CircuitError::UnboundParameter {
                param: 5,
                provided: 0
            })
        );
    }

    #[test]
    fn append_merges_param_tables() {
        let mut parametric = Circuit::new(2);
        let p = parametric.declare_param("gamma");
        parametric.rzz(Angle::sym(p), 0, 1);

        // empty table adopts the appended circuit's table
        let mut host = Circuit::new(2);
        host.h(0);
        host.append(&parametric).unwrap();
        assert_eq!(host.num_params(), 1);

        // conflicting non-empty tables refuse to merge
        let mut other = Circuit::new(2);
        other.declare_param("a");
        other.declare_param("b");
        assert!(matches!(
            other.append(&parametric),
            Err(CircuitError::ParamTableMismatch { .. })
        ));
    }

    #[test]
    fn remapped_and_reversed_preserve_params() {
        let mut c = Circuit::new(2);
        let p = c.declare_param("gamma");
        c.rzz(Angle::sym(p), 0, 1);
        assert_eq!(c.remapped(3, |q| q + 1).num_params(), 1);
        let r = c.reversed();
        assert_eq!(r.num_params(), 1);
        assert_eq!(
            r.instructions()[0].gate(),
            Gate::Rzz(Angle::Sym {
                param: p,
                scale: -1.0
            })
        );
    }

    #[test]
    fn depth_of_empty_and_parallel() {
        assert_eq!(Circuit::new(4).depth(), 0);
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        assert_eq!(c.depth(), 1);
        c.cx(0, 1);
        c.cx(2, 3);
        assert_eq!(c.depth(), 2);
        c.cx(1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn depth_from_matches_standalone_fragment() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        let stitch_point = c.len();
        c.cx(1, 2);
        c.h(2);
        c.cx(0, 1);
        // The suffix as its own circuit:
        let mut frag = Circuit::new(3);
        frag.cx(1, 2);
        frag.h(2);
        frag.cx(0, 1);
        assert_eq!(c.depth_from(stitch_point), frag.depth());
        assert_eq!(c.depth_from(0), c.depth());
        assert_eq!(c.depth_from(c.len()), 0);
    }

    #[test]
    fn reserve_and_clear_keep_capacity() {
        let mut c = Circuit::new(4);
        c.reserve(100);
        let cap = c.capacity();
        assert!(cap >= 100);
        for _ in 0..50 {
            c.h(1);
        }
        assert_eq!(c.capacity(), cap, "reserved pushes must not reallocate");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), cap, "clear retains capacity");
        assert_eq!(c.num_qubits(), 4);
    }

    #[test]
    fn instruction_overlap_and_acts_on() {
        let a = Instruction::two(Gate::Cnot, 0, 1);
        let b = Instruction::two(Gate::Cnot, 1, 2);
        let c = Instruction::one(Gate::H, 3);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.acts_on(0) && a.acts_on(1) && !a.acts_on(2));
    }

    #[test]
    fn display_formats() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.rzz(0.25, 0, 1);
        let s = c.to_string();
        assert!(s.contains("h q0"));
        assert!(s.contains("rzz(0.2500) q0, q1"));
    }
}
