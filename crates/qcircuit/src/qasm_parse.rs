//! OpenQASM 2.0 import for the subset this crate exports.
//!
//! Enables round-tripping compiled circuits through external tooling
//! (e.g. cross-checking depth and gate counts in qiskit and loading the
//! result back). The parser handles the `qelib1.inc` gates the IR knows,
//! single `qreg`/`creg` declarations, and `measure` statements.

use std::error::Error;
use std::fmt;

use crate::{Circuit, Gate, Instruction};

/// Error type for OpenQASM parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseQasmError {
    /// The program did not start with the expected `OPENQASM 2.0;` header.
    MissingHeader,
    /// No `qreg` declaration before the first gate.
    MissingQreg,
    /// A second `qreg` was declared (only one register is supported).
    MultipleQreg,
    /// An unrecognized statement or gate.
    Unsupported(String),
    /// A malformed statement (bad operand syntax, wrong arity, ...).
    Malformed(String),
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseQasmError::MissingHeader => write!(f, "missing OPENQASM 2.0 header"),
            ParseQasmError::MissingQreg => write!(f, "no qreg declared before first gate"),
            ParseQasmError::MultipleQreg => write!(f, "multiple qreg declarations"),
            ParseQasmError::Unsupported(s) => write!(f, "unsupported statement: {s}"),
            ParseQasmError::Malformed(s) => write!(f, "malformed statement: {s}"),
        }
    }
}

impl Error for ParseQasmError {}

/// Parses an OpenQASM 2.0 program (the subset produced by
/// [`crate::qasm::to_qasm`]) into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`ParseQasmError`] describing the first offending statement.
///
/// # Examples
///
/// ```
/// let mut original = qcircuit::Circuit::new(2);
/// original.h(0);
/// original.rzz(0.5, 0, 1);
/// original.measure_all();
/// let text = qcircuit::qasm::to_qasm(&original).unwrap();
/// let parsed = qcircuit::qasm::parse(&text)?;
/// assert_eq!(parsed, original);
/// # Ok::<(), qcircuit::qasm::ParseQasmError>(())
/// ```
pub fn parse(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut saw_header = false;
    for raw in text.split(';') {
        let stmt = strip_comments(raw).trim().to_owned();
        if stmt.is_empty() {
            continue;
        }
        if stmt.starts_with("OPENQASM") {
            saw_header = true;
            continue;
        }
        if !saw_header {
            return Err(ParseQasmError::MissingHeader);
        }
        if stmt.starts_with("include") || stmt.starts_with("creg") || stmt.starts_with("barrier") {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("qreg") {
            if circuit.is_some() {
                return Err(ParseQasmError::MultipleQreg);
            }
            let n = parse_reg_size(rest).ok_or_else(|| ParseQasmError::Malformed(stmt.clone()))?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        let c = circuit.as_mut().ok_or(ParseQasmError::MissingQreg)?;
        parse_statement(&stmt, c)?;
    }
    circuit.ok_or(ParseQasmError::MissingQreg)
}

fn strip_comments(s: &str) -> String {
    s.lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn parse_reg_size(rest: &str) -> Option<usize> {
    // e.g. " q[4]"
    let open = rest.find('[')?;
    let close = rest.find(']')?;
    rest[open + 1..close].trim().parse().ok()
}

fn parse_statement(stmt: &str, circuit: &mut Circuit) -> Result<(), ParseQasmError> {
    // measure q[i] -> c[i]
    if let Some(rest) = stmt.strip_prefix("measure") {
        let q = parse_operand(rest.split("->").next().unwrap_or(""))
            .ok_or_else(|| ParseQasmError::Malformed(stmt.to_owned()))?;
        circuit
            .push(Instruction::one(Gate::Measure, q))
            .map_err(|e| ParseQasmError::Malformed(format!("{stmt}: {e}")))?;
        return Ok(());
    }
    // name(params)? operands
    let (head, operands_text) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos) if !stmt[..pos].contains('(') || stmt[..pos].contains(')') => stmt.split_at(pos),
        _ => {
            // parameterized gate: split after closing paren
            let close = stmt
                .find(')')
                .ok_or_else(|| ParseQasmError::Malformed(stmt.to_owned()))?;
            stmt.split_at(close + 1)
        }
    };
    let (name, params) = match head.find('(') {
        Some(open) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| ParseQasmError::Malformed(stmt.to_owned()))?;
            let params: Result<Vec<f64>, _> = head[open + 1..close]
                .split(',')
                .map(|p| parse_angle(p.trim()))
                .collect();
            (
                head[..open].trim(),
                params.map_err(|_| ParseQasmError::Malformed(stmt.to_owned()))?,
            )
        }
        None => (head.trim(), Vec::new()),
    };
    let operands: Vec<usize> = operands_text
        .split(',')
        .map(parse_operand)
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| ParseQasmError::Malformed(stmt.to_owned()))?;

    let p = |i: usize| -> f64 { params.get(i).copied().unwrap_or(0.0) };
    let gate = match (name, params.len()) {
        ("id", 0) => Gate::Id,
        ("h", 0) => Gate::H,
        ("x", 0) => Gate::X,
        ("y", 0) => Gate::Y,
        ("z", 0) => Gate::Z,
        ("s", 0) => Gate::S,
        ("sdg", 0) => Gate::Sdg,
        ("t", 0) => Gate::T,
        ("tdg", 0) => Gate::Tdg,
        ("rx", 1) => Gate::Rx((p(0)).into()),
        ("ry", 1) => Gate::Ry((p(0)).into()),
        ("rz", 1) => Gate::Rz((p(0)).into()),
        ("u1", 1) => Gate::U1((p(0)).into()),
        ("u2", 2) => Gate::U2((p(0)).into(), (p(1)).into()),
        ("u3", 3) => Gate::U3((p(0)).into(), (p(1)).into(), (p(2)).into()),
        ("cx" | "CX", 0) => Gate::Cnot,
        ("cz", 0) => Gate::Cz,
        ("cp" | "cu1", 1) => Gate::CPhase((p(0)).into()),
        ("rzz", 1) => Gate::Rzz((p(0)).into()),
        ("swap", 0) => Gate::Swap,
        _ => return Err(ParseQasmError::Unsupported(stmt.to_owned())),
    };
    let instr = match (gate.arity(), operands.as_slice()) {
        (1, [q]) => Instruction::one(gate, *q),
        (2, [a, b]) => Instruction::two(gate, *a, *b),
        _ => return Err(ParseQasmError::Malformed(stmt.to_owned())),
    };
    circuit
        .push(instr)
        .map_err(|e| ParseQasmError::Malformed(format!("{stmt}: {e}")))
}

/// Parses an angle literal, supporting plain floats and the `pi`-based
/// forms qiskit emits (`pi`, `-pi/2`, `3*pi/4`, `2pi`).
fn parse_angle(text: &str) -> Result<f64, ()> {
    let t = text.trim();
    if let Ok(v) = t.parse::<f64>() {
        return Ok(v);
    }
    if !t.contains("pi") {
        return Err(());
    }
    let (sign, t) = match t.strip_prefix('-') {
        Some(rest) => (-1.0, rest.trim()),
        None => (1.0, t),
    };
    let (numer_text, denom) = match t.split_once('/') {
        Some((n, d)) => (n.trim(), d.trim().parse::<f64>().map_err(|_| ())?),
        None => (t, 1.0),
    };
    let coeff = match numer_text.strip_suffix("pi") {
        Some("") => 1.0,
        Some(c) => {
            let c = c.trim().trim_end_matches('*').trim();
            if c.is_empty() {
                1.0
            } else {
                c.parse::<f64>().map_err(|_| ())?
            }
        }
        None => return Err(()),
    };
    Ok(sign * coeff * std::f64::consts::PI / denom)
}

fn parse_operand(text: &str) -> Option<usize> {
    let t = text.trim();
    let open = t.find('[')?;
    let close = t.find(']')?;
    t[open + 1..close].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm::to_qasm;

    #[test]
    fn round_trip_every_exported_gate() {
        let mut c = Circuit::new(3);
        c.push(Instruction::one(Gate::Id, 0)).unwrap();
        c.h(0);
        c.x(1);
        c.y(2);
        c.z(0);
        c.push(Instruction::one(Gate::S, 1)).unwrap();
        c.push(Instruction::one(Gate::Sdg, 1)).unwrap();
        c.push(Instruction::one(Gate::T, 2)).unwrap();
        c.push(Instruction::one(Gate::Tdg, 2)).unwrap();
        c.rx(0.25, 0);
        c.ry(-1.5, 1);
        c.rz(3.25, 2);
        c.u1(0.125, 0);
        c.push(Instruction::one(Gate::U2((0.1).into(), (0.2).into()), 1))
            .unwrap();
        c.push(Instruction::one(
            Gate::U3((0.1).into(), (0.2).into(), (0.3).into()),
            2,
        ))
        .unwrap();
        c.cx(0, 1);
        c.cz(1, 2);
        c.cp(0.375, 0, 2);
        c.rzz(-0.625, 1, 0);
        c.swap(2, 0);
        c.measure_all();
        let parsed = parse(&to_qasm(&c).unwrap()).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn parses_pi_expressions() {
        let qasm = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\ncreg c[1];\nu2(0,pi) q[0];\nrz(-pi/2) q[0];\nu1(3*pi/4) q[0];\nrx(2pi) q[0];\n";
        let c = parse(qasm).unwrap();
        assert_eq!(c.len(), 4);
        let gates: Vec<Gate> = c.iter().map(|i| i.gate()).collect();
        assert_eq!(
            gates[0],
            Gate::U2((0.0).into(), (std::f64::consts::PI).into())
        );
        assert_eq!(gates[1], Gate::Rz((-std::f64::consts::FRAC_PI_2).into()));
        assert_eq!(
            gates[2],
            Gate::U1((3.0 * std::f64::consts::FRAC_PI_4).into())
        );
        assert_eq!(gates[3], Gate::Rx((2.0 * std::f64::consts::PI).into()));
    }

    #[test]
    fn missing_header_is_rejected() {
        assert_eq!(
            parse("qreg q[2];\nh q[0];"),
            Err(ParseQasmError::MissingHeader)
        );
    }

    #[test]
    fn gate_before_qreg_is_rejected() {
        let qasm = "OPENQASM 2.0;\nh q[0];";
        assert_eq!(parse(qasm), Err(ParseQasmError::MissingQreg));
    }

    #[test]
    fn duplicate_qreg_is_rejected() {
        let qasm = "OPENQASM 2.0;\nqreg q[2];\nqreg r[2];";
        assert_eq!(parse(qasm), Err(ParseQasmError::MultipleQreg));
    }

    #[test]
    fn unknown_gate_is_unsupported() {
        let qasm = "OPENQASM 2.0;\nqreg q[2];\nccx q[0],q[1];";
        assert!(matches!(parse(qasm), Err(ParseQasmError::Unsupported(_))));
    }

    #[test]
    fn out_of_range_operand_is_malformed() {
        let qasm = "OPENQASM 2.0;\nqreg q[2];\nh q[5];";
        assert!(matches!(parse(qasm), Err(ParseQasmError::Malformed(_))));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let qasm = "OPENQASM 2.0;\n// a comment\nqreg q[1];\n\nh q[0]; // trailing\n";
        let c = parse(qasm).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn compiled_circuit_round_trips() {
        // A routed, basis-lowered circuit survives export + import.
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            c.rzz(0.5, a, b);
        }
        c.swap(0, 1);
        c.measure_all();
        let lowered = crate::basis::to_basis(&c, crate::basis::BasisSet::Ibm).unwrap();
        let parsed = parse(&to_qasm(&lowered).unwrap()).unwrap();
        assert_eq!(parsed, lowered);
    }
}
