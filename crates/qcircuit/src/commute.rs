//! Gate commutation rules.
//!
//! The central observation the paper builds on: "The CPHASE operations in a
//! QAOA circuit are commutative, i.e. the order of these CPHASE gates can
//! be interchanged without affecting the output state" (§I). This module
//! decides whether two instructions commute so passes can legally reorder
//! them, using structural rules backed (in tests) by explicit matrix
//! checks.

use crate::math::{equal_up_to_phase4, identity2, kron, matmul4, Matrix4};
use crate::{Gate, Instruction};

/// Whether `a` and `b` commute as operators, by structural rules.
///
/// The rules are conservative (sound but not complete): a `true` result
/// guarantees the instructions commute; a `false` result means reordering
/// is not proven safe.
///
/// Rules, in order:
/// 1. Instructions on disjoint qubits always commute.
/// 2. Measurements never commute with overlapping operations.
/// 3. Z-diagonal gates (Rz, U1, Z, S, T, CZ, CPhase, Rzz, ...) commute with
///    each other on any qubit overlap — this covers the QAOA cost layer.
/// 4. Rx rotations on the same single qubit commute with each other.
///
/// # Examples
///
/// ```
/// use qcircuit::{commute::commutes, Gate, Instruction};
///
/// let a = Instruction::two(Gate::Rzz((0.3).into()), 0, 1);
/// let b = Instruction::two(Gate::Rzz((0.8).into()), 1, 2);
/// assert!(commutes(&a, &b)); // shared qubit, both diagonal
///
/// let c = Instruction::one(Gate::Rx((0.3).into()), 1);
/// assert!(!commutes(&a, &c));
/// ```
pub fn commutes(a: &Instruction, b: &Instruction) -> bool {
    if !a.overlaps(b) {
        return true;
    }
    if !a.gate().is_unitary() || !b.gate().is_unitary() {
        return false;
    }
    if a.gate().is_diagonal() && b.gate().is_diagonal() {
        return true;
    }
    // Same-axis single-qubit rotations on the same qubit.
    if a.gate().arity() == 1 && b.gate().arity() == 1 && a.q0() == b.q0() {
        if let (Gate::Rx(_), Gate::Rx(_)) | (Gate::Ry(_), Gate::Ry(_)) = (a.gate(), b.gate()) {
            return true;
        }
    }
    false
}

/// Whether every pair of instructions in `instrs` mutually commutes —
/// e.g. a full QAOA cost layer.
pub fn all_commute(instrs: &[Instruction]) -> bool {
    for (i, a) in instrs.iter().enumerate() {
        for b in &instrs[i + 1..] {
            if !commutes(a, b) {
                return false;
            }
        }
    }
    true
}

/// Exact commutation check by multiplying the embedded matrices of two
/// instructions whose combined support covers at most 2 qubits.
///
/// Used in tests to validate [`commutes`]; exposed for diagnostic tooling.
/// Returns `None` when the pair's support spans more than two distinct
/// qubits (embedding would need 8×8 matrices), involves measurement, or
/// carries symbolic angles (no concrete matrices exist before binding —
/// use the structural [`commutes`], which is angle-independent).
pub fn commutes_exact(a: &Instruction, b: &Instruction) -> Option<bool> {
    if !a.gate().is_unitary() || !b.gate().is_unitary() {
        return None;
    }
    if a.gate().is_parametric() || b.gate().is_parametric() {
        return None;
    }
    let mut support: Vec<usize> = a.qubit_vec();
    for q in b.qubit_vec() {
        if !support.contains(&q) {
            support.push(q);
        }
    }
    if support.len() > 2 {
        return None;
    }
    // Embed both into the 2-qubit space spanned by `support` (padded with
    // an arbitrary extra qubit when the support is a single qubit).
    if support.len() == 1 {
        support.push(usize::MAX); // virtual padding qubit
    }
    let embed = |i: &Instruction| -> Matrix4 {
        if i.gate().arity() == 1 {
            if i.q0() == support[0] {
                kron(&i.gate().matrix2(), &identity2())
            } else {
                kron(&identity2(), &i.gate().matrix2())
            }
        } else {
            // Orient the 4x4 so that support[0] is the high bit.
            if i.q0() == support[0] {
                i.gate().matrix4()
            } else {
                swap_conjugate(&i.gate().matrix4())
            }
        }
    };
    let ma = embed(a);
    let mb = embed(b);
    Some(equal_up_to_phase4(
        &matmul4(&ma, &mb),
        &matmul4(&mb, &ma),
        1e-9,
    ))
}

/// Conjugates a 4×4 matrix by SWAP, exchanging the roles of the two qubits.
fn swap_conjugate(m: &Matrix4) -> Matrix4 {
    let s = Gate::Swap.matrix4();
    matmul4(&s, &matmul4(m, &s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Angle, ParamId};

    #[test]
    fn symbolic_cost_gates_commute_structurally() {
        // Rzz/CPhase commute regardless of binding: the structural rule
        // sees only diagonality, never the angle.
        let g = Angle::sym(ParamId(0));
        let a = Instruction::two(Gate::Rzz(g.neg()), 0, 1);
        let b = Instruction::two(Gate::CPhase(g.scaled(2.0)), 1, 2);
        assert!(commutes(&a, &b));
        let rx = Instruction::one(Gate::Rx(Angle::sym(ParamId(1))), 1);
        assert!(!commutes(&a, &rx));
        // The exact check declines symbolic pairs instead of panicking.
        assert_eq!(commutes_exact(&a, &b), None);
        let concrete = Instruction::two(Gate::Rzz((0.4).into()), 0, 1);
        assert!(commutes_exact(&concrete, &concrete).unwrap());
    }

    #[test]
    fn disjoint_instructions_commute() {
        let a = Instruction::two(Gate::Cnot, 0, 1);
        let b = Instruction::two(Gate::Cnot, 2, 3);
        assert!(commutes(&a, &b));
    }

    #[test]
    fn qaoa_cost_layer_commutes() {
        let layer = [
            Instruction::two(Gate::Rzz((0.1).into()), 0, 1),
            Instruction::two(Gate::Rzz((0.2).into()), 1, 2),
            Instruction::two(Gate::Rzz((0.3).into()), 0, 2),
            Instruction::two(Gate::Rzz((0.4).into()), 2, 3),
        ];
        assert!(all_commute(&layer));
    }

    #[test]
    fn measurement_blocks_reordering() {
        let m = Instruction::one(Gate::Measure, 0);
        let g = Instruction::one(Gate::Rz((0.3).into()), 0);
        assert!(!commutes(&m, &g));
        assert!(!commutes(&g, &m));
        // ...but measurement on another qubit is fine.
        let g2 = Instruction::one(Gate::Rz((0.3).into()), 1);
        assert!(commutes(&m, &g2));
    }

    #[test]
    fn mixed_basis_does_not_commute() {
        let rzz = Instruction::two(Gate::Rzz((0.1).into()), 0, 1);
        let rx = Instruction::one(Gate::Rx((0.4).into()), 0);
        let h = Instruction::one(Gate::H, 1);
        assert!(!commutes(&rzz, &rx));
        assert!(!commutes(&rzz, &h));
    }

    #[test]
    fn same_axis_rotations_commute() {
        let a = Instruction::one(Gate::Rx((0.2).into()), 3);
        let b = Instruction::one(Gate::Rx((1.0).into()), 3);
        assert!(commutes(&a, &b));
        let c = Instruction::one(Gate::Ry((1.0).into()), 3);
        assert!(!commutes(&a, &c));
    }

    #[test]
    fn structural_rules_are_sound_vs_exact() {
        // For every pair over a small gate pool on 2 qubits: if the
        // structural rule says "commutes", the exact check must agree.
        let pool = [
            Instruction::one(Gate::H, 0),
            Instruction::one(Gate::Rz((0.3).into()), 0),
            Instruction::one(Gate::Rx((0.7).into()), 1),
            Instruction::one(Gate::T, 1),
            Instruction::two(Gate::Rzz((0.5).into()), 0, 1),
            Instruction::two(Gate::CPhase((0.9).into()), 0, 1),
            Instruction::two(Gate::Cnot, 0, 1),
            Instruction::two(Gate::Cnot, 1, 0),
            Instruction::two(Gate::Swap, 0, 1),
            Instruction::two(Gate::Cz, 0, 1),
        ];
        for a in &pool {
            for b in &pool {
                if commutes(a, b) {
                    assert_eq!(
                        commutes_exact(a, b),
                        Some(true),
                        "structural rule wrongly claims {a} and {b} commute"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_detects_cnot_asymmetry() {
        let ab = Instruction::two(Gate::Cnot, 0, 1);
        let ba = Instruction::two(Gate::Cnot, 1, 0);
        assert_eq!(commutes_exact(&ab, &ba), Some(false));
        // CNOTs sharing only the control commute...
        let ab2 = Instruction::two(Gate::Cnot, 0, 1);
        assert_eq!(commutes_exact(&ab, &ab2), Some(true));
        // CZ is symmetric and diagonal: commutes with CPhase.
        let cz = Instruction::two(Gate::Cz, 0, 1);
        let cp = Instruction::two(Gate::CPhase((0.3).into()), 1, 0);
        assert_eq!(commutes_exact(&cz, &cp), Some(true));
    }

    #[test]
    fn exact_gives_up_beyond_two_qubits() {
        let a = Instruction::two(Gate::Rzz((0.1).into()), 0, 1);
        let b = Instruction::two(Gate::Rzz((0.1).into()), 1, 2);
        assert_eq!(commutes_exact(&a, &b), None);
        // ...while the structural rule still resolves it.
        assert!(commutes(&a, &b));
    }
}
