//! Extended circuit statistics beyond depth and gate count.
//!
//! The paper's headline metrics are depth, gate-count and success
//! probability; these helpers expose the finer-grained quantities the
//! analysis sections reason about — two-qubit structure (two-qubit gates
//! dominate both error and latency), per-qubit load balance, and idle
//! time (the decoherence exposure that makes depth matter, §II).

use crate::layers::asap_layers;
use crate::Circuit;

/// A summary of a circuit's scheduling structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Total instructions (including measurements).
    pub instructions: usize,
    /// Unitary gate count (the paper's gate-count metric).
    pub gates: usize,
    /// Two-qubit gate count.
    pub two_qubit_gates: usize,
    /// ASAP depth (the paper's depth metric).
    pub depth: usize,
    /// Depth counting only layers that contain a two-qubit gate.
    pub two_qubit_depth: usize,
    /// Mean gates per layer.
    pub mean_layer_occupancy: f64,
    /// Total idle qubit-layer slots (decoherence exposure): the number of
    /// (qubit, layer) pairs where a busy circuit leaves the qubit idle
    /// between its first and last use.
    pub idle_slots: usize,
    /// Maximum number of operations on any single qubit.
    pub max_qubit_load: usize,
}

/// Computes [`CircuitStats`] for a circuit.
///
/// # Examples
///
/// ```
/// let mut c = qcircuit::Circuit::new(3);
/// c.h(0);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// let stats = qcircuit::metrics::stats(&c);
/// assert_eq!(stats.depth, 3);
/// assert_eq!(stats.two_qubit_depth, 2);
/// assert_eq!(stats.max_qubit_load, 2);
/// ```
pub fn stats(c: &Circuit) -> CircuitStats {
    let layers = asap_layers(c);
    let n = c.num_qubits();
    let depth = layers.len();
    let two_qubit_depth = layers
        .iter()
        .filter(|l| l.iter().any(|i| i.gate().arity() == 2))
        .count();

    // Per-qubit first/last activity and load.
    let mut first = vec![usize::MAX; n];
    let mut last = vec![0usize; n];
    let mut load = vec![0usize; n];
    let mut busy = vec![vec![false; depth]; n];
    for (li, layer) in layers.iter().enumerate() {
        for instr in layer {
            for q in instr.qubit_vec() {
                first[q] = first[q].min(li);
                last[q] = last[q].max(li);
                load[q] += 1;
                busy[q][li] = true;
            }
        }
    }
    let idle_slots = (0..n)
        .filter(|&q| first[q] != usize::MAX)
        .map(|q| (first[q]..=last[q]).filter(|&li| !busy[q][li]).count())
        .sum();

    CircuitStats {
        instructions: c.len(),
        gates: c.gate_count(),
        two_qubit_gates: c.two_qubit_count(),
        depth,
        two_qubit_depth,
        mean_layer_occupancy: if depth == 0 {
            0.0
        } else {
            c.len() as f64 / depth as f64
        },
        idle_slots,
        max_qubit_load: load.into_iter().max().unwrap_or(0),
    }
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} instr, {} gates ({} 2q), depth {} ({} 2q-layers), {:.2} gates/layer, {} idle slots, max load {}",
            self.instructions,
            self.gates,
            self.two_qubit_gates,
            self.depth,
            self.two_qubit_depth,
            self.mean_layer_occupancy,
            self.idle_slots,
            self.max_qubit_load
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_circuit_stats() {
        let s = stats(&Circuit::new(3));
        assert_eq!(s.instructions, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.idle_slots, 0);
        assert_eq!(s.mean_layer_occupancy, 0.0);
        assert_eq!(s.max_qubit_load, 0);
    }

    #[test]
    fn serial_chain_has_idle_slots() {
        // q0 is busy at layers 0 and 2 but idle at layer 1.
        let mut c = Circuit::new(3);
        c.cx(0, 1); // layer 0
        c.cx(1, 2); // layer 1
        c.cx(0, 1); // layer 2
        let s = stats(&c);
        assert_eq!(s.depth, 3);
        assert_eq!(s.two_qubit_depth, 3);
        assert_eq!(s.idle_slots, 1); // q0 idle at layer 1 (q1 always busy; q2's window is one layer)
        assert_eq!(s.max_qubit_load, 3); // q1 in all three gates
    }

    #[test]
    fn parallel_circuit_has_no_idle() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        c.cx(0, 1);
        c.cx(2, 3);
        let s = stats(&c);
        assert_eq!(s.depth, 2);
        assert_eq!(s.idle_slots, 0);
        assert!((s.mean_layer_occupancy - 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_depth_skips_single_qubit_layers() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        c.cx(0, 1);
        c.rx(0.3, 0);
        let s = stats(&c);
        assert_eq!(s.depth, 3);
        assert_eq!(s.two_qubit_depth, 1);
        assert_eq!(s.two_qubit_gates, 1);
    }

    #[test]
    fn display_is_informative() {
        let mut c = Circuit::new(2);
        c.h(0);
        let text = stats(&c).to_string();
        assert!(text.contains("1 instr"));
        assert!(text.contains("depth 1"));
    }
}
