//! Translation into hardware basis gates.
//!
//! IBM machines of the paper's era expose the basis `{U1, U2, U3, CNOT}`
//! (§II "Basis Gates and Coupling Constraints"). Every gate in the IR
//! decomposes into this set; notably the paper's Figure 1(d) shows the
//! commuting "CPHASE" cost gate lowering to `CNOT · RZ · CNOT`, and SWAP
//! lowers to three CNOTs.
//!
//! Gate-count results in the paper are reported on the decomposed circuit,
//! so the experiment harness always lowers before counting.

use std::f64::consts::{FRAC_PI_2, PI};

use crate::param::Angle;
use crate::{Circuit, CircuitError, Gate, Instruction};

/// The basis-gate family a circuit can be lowered to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum BasisSet {
    /// IBM's `{U1, U2, U3, CNOT}` basis used by all targets in the paper.
    #[default]
    Ibm,
}

/// Lowers every instruction of `c` into the chosen basis.
///
/// Measurements pass through unchanged. The output contains only `U1`,
/// `U2`, `U3`, `Cnot` and `Measure` instructions for [`BasisSet::Ibm`].
/// Every lowering rule is *affine* in the gate angle, so parametric
/// circuits lower symbolically: `to_basis` commutes with `bind`, the
/// property the compile-once/rebind-many artifact relies on.
///
/// # Errors
///
/// Returns [`CircuitError::NotInBasis`] if a gate has no known lowering
/// (cannot currently happen for the shipped gate set; the error arm guards
/// future gate additions).
///
/// # Examples
///
/// ```
/// use qcircuit::basis::{to_basis, BasisSet};
/// use qcircuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.rzz(0.7, 0, 1);
/// let lowered = to_basis(&c, BasisSet::Ibm)?;
/// assert_eq!(lowered.count_gate("cx"), 2);
/// assert_eq!(lowered.count_gate("u1"), 1);
/// # Ok::<(), qcircuit::CircuitError>(())
/// ```
pub fn to_basis(c: &Circuit, basis: BasisSet) -> Result<Circuit, CircuitError> {
    let BasisSet::Ibm = basis;
    let mut out = Circuit::new(c.num_qubits());
    out.set_param_table(c.param_table().clone());
    // Every lowering rule has a statically known length, so the output
    // buffer is sized exactly once — lowering a compiled circuit (the
    // per-compile hot tail) never reallocates.
    out.reserve(c.iter().map(|i| lowered_len_ibm(i.gate())).sum());
    for instr in c.iter() {
        lower_ibm(instr, &mut out)?;
    }
    Ok(out)
}

/// Number of basis instructions [`lower_ibm`] emits for `gate`.
fn lowered_len_ibm(gate: Gate) -> usize {
    #[allow(unreachable_patterns)]
    match gate {
        Gate::Id => 0,
        Gate::Cz | Gate::Rzz(_) | Gate::Swap => 3,
        Gate::CPhase(_) => 5,
        _ => 1,
    }
}

/// Appends the IBM-basis lowering of one instruction to `out`.
fn lower_ibm(instr: &Instruction, out: &mut Circuit) -> Result<(), CircuitError> {
    let q = instr.q0();
    let push1 = |out: &mut Circuit, g: Gate, q: usize| {
        out.push(Instruction::one(g, q))
            .expect("operand validated by caller circuit")
    };
    let push2 = |out: &mut Circuit, g: Gate, a: usize, b: usize| {
        out.push(Instruction::two(g, a, b))
            .expect("operand validated by caller circuit")
    };
    // `Gate` is non_exhaustive: the catch-all arm guards variants added in
    // future versions, and is unreachable for the current set.
    #[allow(unreachable_patterns)]
    match instr.gate() {
        // Already basis gates.
        Gate::U1(_) | Gate::U2(..) | Gate::U3(..) | Gate::Cnot | Gate::Measure => {
            out.push(*instr)
                .expect("operand validated by caller circuit");
        }
        Gate::Id => {} // identity compiles away
        Gate::H => push1(out, Gate::U2(Angle::Const(0.0), Angle::Const(PI)), q),
        Gate::X => push1(
            out,
            Gate::U3(Angle::Const(PI), Angle::Const(0.0), Angle::Const(PI)),
            q,
        ),
        Gate::Y => push1(
            out,
            Gate::U3(
                Angle::Const(PI),
                Angle::Const(FRAC_PI_2),
                Angle::Const(FRAC_PI_2),
            ),
            q,
        ),
        Gate::Z => push1(out, Gate::U1(Angle::Const(PI)), q),
        Gate::S => push1(out, Gate::U1(Angle::Const(FRAC_PI_2)), q),
        Gate::Sdg => push1(out, Gate::U1(Angle::Const(-FRAC_PI_2)), q),
        Gate::T => push1(out, Gate::U1(Angle::Const(PI / 4.0)), q),
        Gate::Tdg => push1(out, Gate::U1(Angle::Const(-PI / 4.0)), q),
        Gate::Rx(t) => push1(
            out,
            Gate::U3(t, Angle::Const(-FRAC_PI_2), Angle::Const(FRAC_PI_2)),
            q,
        ),
        Gate::Ry(t) => push1(out, Gate::U3(t, Angle::Const(0.0), Angle::Const(0.0)), q),
        Gate::Rz(t) => push1(out, Gate::U1(t), q),
        Gate::Cz => {
            // H on target, CNOT, H on target.
            let (a, b) = (instr.q0(), instr.q1());
            push1(out, Gate::U2(Angle::Const(0.0), Angle::Const(PI)), b);
            push2(out, Gate::Cnot, a, b);
            push1(out, Gate::U2(Angle::Const(0.0), Angle::Const(PI)), b);
        }
        Gate::Rzz(t) => {
            // Figure 1(d): CNOT · RZ(θ) · CNOT.
            let (a, b) = (instr.q0(), instr.q1());
            push2(out, Gate::Cnot, a, b);
            push1(out, Gate::U1(t), b);
            push2(out, Gate::Cnot, a, b);
        }
        Gate::CPhase(l) => {
            // CP(λ) = U1(λ/2)_a · U1(λ/2)_b · [CNOT · U1(-λ/2)_b · CNOT]
            let (a, b) = (instr.q0(), instr.q1());
            push1(out, Gate::U1(l.scaled(0.5)), a);
            push2(out, Gate::Cnot, a, b);
            push1(out, Gate::U1(l.scaled(-0.5)), b);
            push2(out, Gate::Cnot, a, b);
            push1(out, Gate::U1(l.scaled(0.5)), b);
        }
        Gate::Swap => {
            let (a, b) = (instr.q0(), instr.q1());
            push2(out, Gate::Cnot, a, b);
            push2(out, Gate::Cnot, b, a);
            push2(out, Gate::Cnot, a, b);
        }
        other => return Err(CircuitError::NotInBasis(other.name().to_owned())),
    }
    Ok(())
}

/// Whether `c` contains only gates of the given basis (plus measurements).
pub fn is_in_basis(c: &Circuit, basis: BasisSet) -> bool {
    let BasisSet::Ibm = basis;
    c.iter().all(|i| {
        matches!(
            i.gate(),
            Gate::U1(_) | Gate::U2(..) | Gate::U3(..) | Gate::Cnot | Gate::Measure
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{equal_up_to_phase4, identity2, kron, matmul4, Matrix4};

    /// Computes the 4x4 unitary of a 2-qubit circuit (qubit 0 = low bit),
    /// ignoring measurements.
    fn unitary_of(c: &Circuit) -> Matrix4 {
        assert_eq!(c.num_qubits(), 2);
        let mut u = crate::math::identity4();
        for instr in c.iter().filter(|i| i.gate().is_unitary()) {
            let m = if instr.gate().arity() == 1 {
                if instr.q0() == 1 {
                    kron(&instr.gate().matrix2(), &identity2())
                } else {
                    kron(&identity2(), &instr.gate().matrix2())
                }
            } else if instr.q0() == 1 {
                instr.gate().matrix4()
            } else {
                // orient so first operand is high bit
                let s = Gate::Swap.matrix4();
                matmul4(&s, &matmul4(&instr.gate().matrix4(), &s))
            };
            u = matmul4(&m, &u);
        }
        u
    }

    fn check_equivalent(gate: Gate) {
        let mut original = Circuit::new(2);
        if gate.arity() == 1 {
            original.push(Instruction::one(gate, 0)).unwrap();
        } else {
            original.push(Instruction::two(gate, 1, 0)).unwrap();
        }
        let lowered = to_basis(&original, BasisSet::Ibm).unwrap();
        assert!(
            is_in_basis(&lowered, BasisSet::Ibm),
            "{gate} not fully lowered"
        );
        assert!(
            equal_up_to_phase4(&unitary_of(&original), &unitary_of(&lowered), 1e-9),
            "{gate} lowering is not unitarily equivalent"
        );
    }

    #[test]
    fn every_gate_lowers_equivalently() {
        let a = Angle::Const;
        for gate in [
            Gate::Id,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(a(0.37)),
            Gate::Ry(a(-0.9)),
            Gate::Rz(a(2.2)),
            Gate::U1(a(0.4)),
            Gate::U2(a(0.1), a(0.2)),
            Gate::U3(a(0.5), a(0.6), a(0.7)),
            Gate::Cnot,
            Gate::Cz,
            Gate::CPhase(a(1.234)),
            Gate::Rzz(a(-0.77)),
            Gate::Swap,
        ] {
            check_equivalent(gate);
        }
    }

    #[test]
    fn lowering_commutes_with_binding() {
        // to_basis(bind(c)) == bind(to_basis(c)): the affine lowering rules
        // keep symbolic angles symbolic, and substitution distributes.
        let mut c = Circuit::new(3);
        let gamma = c.declare_param("gamma");
        let beta = c.declare_param("beta");
        for q in 0..3 {
            c.h(q);
        }
        c.rzz(Angle::sym(gamma).neg(), 0, 1);
        c.cp(Angle::sym(gamma).scaled(2.0), 1, 2);
        for q in 0..3 {
            c.rx(Angle::sym(beta).scaled(2.0), q);
        }
        let lowered = to_basis(&c, BasisSet::Ibm).unwrap();
        assert!(lowered.is_parametric());
        assert_eq!(lowered.num_params(), 2);

        let values = crate::ParamValues::new(vec![0.45, -0.2]);
        let bind_then_lower = to_basis(&c.bind(&values).unwrap(), BasisSet::Ibm).unwrap();
        let lower_then_bind = lowered.bind(&values).unwrap();
        assert_eq!(bind_then_lower, lower_then_bind);
    }

    #[test]
    fn rzz_costs_two_cnots_and_one_u1() {
        let mut c = Circuit::new(2);
        c.rzz(0.5, 0, 1);
        let l = to_basis(&c, BasisSet::Ibm).unwrap();
        assert_eq!(l.count_gate("cx"), 2);
        assert_eq!(l.count_gate("u1"), 1);
        assert_eq!(l.gate_count(), 3);
    }

    #[test]
    fn swap_costs_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let l = to_basis(&c, BasisSet::Ibm).unwrap();
        assert_eq!(l.count_gate("cx"), 3);
        assert_eq!(l.gate_count(), 3);
    }

    #[test]
    fn identity_compiles_away() {
        let mut c = Circuit::new(1);
        c.push(Instruction::one(Gate::Id, 0)).unwrap();
        let l = to_basis(&c, BasisSet::Ibm).unwrap();
        assert!(l.is_empty());
    }

    #[test]
    fn measurements_pass_through() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.measure_all();
        let l = to_basis(&c, BasisSet::Ibm).unwrap();
        assert_eq!(l.count_gate("measure"), 2);
    }

    #[test]
    fn lowering_reserve_is_exact() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.rzz(0.4, 0, 1);
        c.cp(0.3, 1, 2);
        c.swap(2, 3);
        c.cz(0, 3);
        c.push(Instruction::one(Gate::Id, 1)).unwrap();
        c.rx(0.9, 2);
        c.measure_all();
        let l = to_basis(&c, BasisSet::Ibm).unwrap();
        let predicted: usize = c.iter().map(|i| lowered_len_ibm(i.gate())).sum();
        assert_eq!(l.len(), predicted);
    }

    #[test]
    fn qaoa_circuit_gate_count_formula() {
        // p=1 QAOA-MaxCut on a graph with E edges and n nodes lowers to
        // n H (=U2) + E*(2 CNOT + 1 U1) + n RX (=U3).
        let (n, edges) = (4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (1, 3)]);
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for (a, b) in edges {
            c.rzz(0.3, a, b);
        }
        for q in 0..n {
            c.rx(0.9, q);
        }
        let l = to_basis(&c, BasisSet::Ibm).unwrap();
        assert_eq!(l.gate_count(), n + edges.len() * 3 + n);
        assert_eq!(l.count_gate("cx"), 2 * edges.len());
    }
}
