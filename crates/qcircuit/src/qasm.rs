//! OpenQASM 2.0 export.
//!
//! Lets compiled circuits be inspected with external tooling (e.g. loaded
//! back into qiskit to cross-check depth and gate counts against the
//! paper's backend).
//!
//! QASM 2 has no notion of symbolic parameters, so export is defined only
//! for fully bound circuits: [`to_qasm`] returns
//! [`CircuitError::SymbolicAngle`] when it encounters an unbound angle
//! instead of emitting garbage text.

use std::fmt::Write as _;

pub use crate::qasm_parse::{parse, ParseQasmError};

use crate::{Circuit, CircuitError, Gate};

/// Serializes a fully bound circuit as an OpenQASM 2.0 program.
///
/// All gates in the shipped gate set are expressible: IR gates map to
/// `qelib1.inc` gates of the same name, and measurements write into a
/// classical register `c` of matching size.
///
/// # Errors
///
/// Returns [`CircuitError::SymbolicAngle`] if any instruction still carries
/// a symbolic angle — bind the circuit (see [`Circuit::bind`]) first.
///
/// # Examples
///
/// ```
/// let mut c = qcircuit::Circuit::new(2);
/// c.h(0);
/// c.cx(0, 1);
/// c.measure_all();
/// let qasm = qcircuit::qasm::to_qasm(&c)?;
/// assert!(qasm.contains("cx q[0],q[1];"));
/// assert!(qasm.contains("measure q[1] -> c[1];"));
/// # Ok::<(), qcircuit::CircuitError>(())
/// ```
pub fn to_qasm(c: &Circuit) -> Result<String, CircuitError> {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let n = c.num_qubits();
    let _ = writeln!(out, "qreg q[{n}];");
    let _ = writeln!(out, "creg c[{n}];");
    for instr in c.iter() {
        let gate = instr.gate();
        if gate.is_parametric() {
            return Err(CircuitError::SymbolicAngle { gate: gate.name() });
        }
        match gate {
            Gate::Measure => {
                let _ = writeln!(out, "measure q[{0}] -> c[{0}];", instr.q0());
            }
            _ => {
                let params = gate.params();
                let rendered = if params.is_empty() {
                    gate.name().to_owned()
                } else {
                    let ps: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
                    format!("{}({})", gate.name(), ps.join(","))
                };
                if gate.arity() == 1 {
                    let _ = writeln!(out, "{rendered} q[{}];", instr.q0());
                } else {
                    let _ = writeln!(out, "{rendered} q[{}],q[{}];", instr.q0(), instr.q1());
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Angle, ParamValues};

    #[test]
    fn header_and_registers() {
        let c = Circuit::new(3);
        let q = to_qasm(&c).unwrap();
        assert!(q.starts_with("OPENQASM 2.0;\n"));
        assert!(q.contains("qreg q[3];"));
        assert!(q.contains("creg c[3];"));
    }

    #[test]
    fn parametric_gates_render_full_precision() {
        let mut c = Circuit::new(2);
        c.rzz(0.123456789012345, 0, 1);
        c.u1(-2.5, 1);
        let q = to_qasm(&c).unwrap();
        assert!(q.contains("rzz(0.123456789012345) q[0],q[1];"));
        assert!(q.contains("u1(-2.5) q[1];"));
    }

    #[test]
    fn qaoa_program_round_trip_lines() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        c.rzz(0.5, 0, 1);
        c.rx(0.25, 0);
        c.rx(0.25, 1);
        c.measure_all();
        let q = to_qasm(&c).unwrap();
        let body: Vec<&str> = q.lines().skip(4).collect();
        assert_eq!(
            body,
            vec![
                "h q[0];",
                "h q[1];",
                "rzz(0.5) q[0],q[1];",
                "rx(0.25) q[0];",
                "rx(0.25) q[1];",
                "measure q[0] -> c[0];",
                "measure q[1] -> c[1];",
            ]
        );
    }

    #[test]
    fn symbolic_angle_is_a_structured_error() {
        let mut c = Circuit::new(2);
        let gamma = c.declare_param("gamma");
        c.h(0);
        c.rzz(Angle::sym(gamma).neg(), 0, 1);
        assert_eq!(
            to_qasm(&c),
            Err(CircuitError::SymbolicAngle { gate: "rzz" })
        );
    }

    #[test]
    fn bound_circuit_round_trips_through_parser() {
        // bind -> export -> parse -> export again must be a fixed point
        let mut c = Circuit::new(3);
        let gamma = c.declare_param("gamma");
        let beta = c.declare_param("beta");
        for q in 0..3 {
            c.h(q);
        }
        c.rzz(Angle::sym(gamma).neg(), 0, 1);
        c.rzz(Angle::sym(gamma).neg(), 1, 2);
        for q in 0..3 {
            c.rx(Angle::sym(beta).scaled(2.0), q);
        }
        c.measure_all();

        let bound = c.bind(&ParamValues::new(vec![0.4, 0.3])).unwrap();
        let qasm = to_qasm(&bound).unwrap();
        let reparsed = parse(&qasm).unwrap();
        assert_eq!(reparsed.num_qubits(), bound.num_qubits());
        assert_eq!(reparsed.len(), bound.len());
        assert_eq!(to_qasm(&reparsed).unwrap(), qasm);
    }
}
