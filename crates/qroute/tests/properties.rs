//! Property-based tests for the backend router.

use proptest::prelude::*;
use qcircuit::Circuit;
use qhw::{Calibration, Topology};
use qroute::sabre::{route_sabre, SabreOptions};
use qroute::{route, satisfies_coupling, Layout, RoutingMetric};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random QAOA-shaped logical circuit (H wall + Rzz edges +
/// mixer) over `n` qubits.
fn arb_qaoa_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    let all_edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    proptest::sample::subsequence(all_edges.clone(), 0..=all_edges.len()).prop_map(move |edges| {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for (a, b) in edges {
            c.rzz(0.5, a, b);
        }
        for q in 0..n {
            c.rx(0.7, q);
        }
        c.measure_all();
        c
    })
}

fn topologies() -> Vec<Topology> {
    vec![
        Topology::linear(9),
        Topology::ring(9),
        Topology::grid(3, 3),
        Topology::ibmq_16_melbourne(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn routing_always_satisfies_coupling(
        c in arb_qaoa_circuit(8),
        topo_idx in 0usize..4,
        seed in 0u64..100,
    ) {
        let topo = &topologies()[topo_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = Layout::random(8, topo.num_qubits(), &mut rng);
        let metric = RoutingMetric::hops(topo);
        let r = route(&c, topo, layout, &metric);
        prop_assert!(satisfies_coupling(&r.circuit, topo));
        // All non-SWAP gates survive routing with their multiplicity.
        prop_assert_eq!(r.circuit.count_gate("rzz"), c.count_gate("rzz"));
        prop_assert_eq!(r.circuit.count_gate("h"), c.count_gate("h"));
        prop_assert_eq!(r.circuit.count_gate("measure"), c.count_gate("measure"));
        prop_assert_eq!(r.circuit.count_gate("swap"), r.swap_count);
    }

    #[test]
    fn final_layout_is_a_permutation(
        c in arb_qaoa_circuit(8),
        seed in 0u64..100,
    ) {
        let topo = Topology::ibmq_16_melbourne();
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = Layout::random(8, topo.num_qubits(), &mut rng);
        let metric = RoutingMetric::hops(&topo);
        let r = route(&c, &topo, layout, &metric);
        let mut seen = std::collections::HashSet::new();
        for (l, p) in r.final_layout.iter() {
            prop_assert!(l < 8);
            prop_assert!(p < topo.num_qubits());
            prop_assert!(seen.insert(p));
        }
    }

    #[test]
    fn reliability_routing_matches_hop_routing_on_uniform_calibration(
        c in arb_qaoa_circuit(7),
    ) {
        // With identical errors everywhere, the variation-aware metric
        // must behave exactly like the hop metric.
        let topo = Topology::grid(3, 3);
        let cal = Calibration::uniform(&topo, 0.02, 1e-3, 1e-2);
        let layout = Layout::trivial(7, 9);
        let hop = route(&c, &topo, layout.clone(), &RoutingMetric::hops(&topo));
        let rel = route(&c, &topo, layout, &RoutingMetric::reliability(&topo, &cal));
        prop_assert_eq!(hop.swap_count, rel.swap_count);
        prop_assert_eq!(hop.circuit, rel.circuit);
    }

    #[test]
    fn sabre_router_is_also_compliant(c in arb_qaoa_circuit(8), seed in 0u64..50) {
        let topo = Topology::grid(3, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = Layout::random(8, 9, &mut rng);
        let metric = RoutingMetric::hops(&topo);
        let r = route_sabre(&c, &topo, layout, &metric, &SabreOptions::default());
        prop_assert!(satisfies_coupling(&r.circuit, &topo));
        prop_assert_eq!(r.circuit.count_gate("rzz"), c.count_gate("rzz"));
    }

    #[test]
    fn swap_count_zero_iff_no_swap_gates(c in arb_qaoa_circuit(6), seed in 0u64..50) {
        let topo = Topology::ring(8);
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = Layout::random(6, 8, &mut rng);
        let r = route(&c, &topo, layout, &RoutingMetric::hops(&topo));
        prop_assert_eq!(r.swap_count == 0, r.circuit.count_gate("swap") == 0);
    }
}

/// Equivalence check on small instances with a fixed set of seeds — kept
/// out of the proptest loop because statevector verification is the
/// expensive part.
#[test]
fn routing_preserves_semantics_small() {
    let topo = Topology::grid(3, 3);
    let metric = RoutingMetric::hops(&topo);
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = qgraph::generators::connected_erdos_renyi(6, 0.5, 1000, &mut rng).unwrap();
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        for e in g.edges() {
            c.rzz(0.37, e.a(), e.b());
        }
        let layout = Layout::random(6, 9, &mut rng);
        let r = route(&c, &topo, layout.clone(), &metric);
        assert!(
            qroute::routed_equivalent(&c, &r.circuit, &layout, &r.final_layout),
            "seed {seed}"
        );
    }
}
