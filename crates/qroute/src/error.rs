//! Structured routing failures.

use std::fmt;

/// Why routing could not produce a hardware-compliant circuit.
///
/// [`crate::try_route`] returns these instead of panicking, so callers
/// (the `qcompile` pipeline, batch drivers) can surface failures as values
/// across thread and API boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The circuit uses more qubits than the topology provides.
    CircuitTooLarge {
        /// Qubits the circuit needs.
        needed: usize,
        /// Qubits the topology provides.
        available: usize,
        /// The topology's display name.
        topology: String,
    },
    /// The layout covers fewer logical qubits than the circuit uses.
    LayoutTooSmall {
        /// Logical qubits the layout covers.
        covers: usize,
        /// Logical qubits the circuit needs.
        needed: usize,
    },
    /// The layout and topology disagree on the physical qubit count.
    LayoutMismatch {
        /// Physical qubits in the layout.
        layout_physical: usize,
        /// Physical qubits in the topology.
        topology_physical: usize,
    },
    /// Two physical qubits that must interact are disconnected in the
    /// coupling graph.
    Disconnected {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// The topology's display name.
        topology: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::CircuitTooLarge {
                needed,
                available,
                topology,
            } => write!(
                f,
                "circuit has {needed} qubits but topology {topology} only {available}"
            ),
            RouteError::LayoutTooSmall { covers, needed } => write!(
                f,
                "layout covers {covers} logical qubits, circuit needs {needed}"
            ),
            RouteError::LayoutMismatch {
                layout_physical,
                topology_physical,
            } => write!(
                f,
                "layout has {layout_physical} physical qubits, topology {topology_physical}"
            ),
            RouteError::Disconnected { a, b, topology } => write!(
                f,
                "physical qubits {a} and {b} are disconnected on {topology}"
            ),
        }
    }
}

impl std::error::Error for RouteError {}
