//! The paper's success-probability metric (§II): the product of the
//! success probabilities of every gate in the compiled circuit.

use qcircuit::{Circuit, Gate};
use qhw::Calibration;

/// Estimated success probability of a *physical* circuit: the product of
/// per-gate success rates `(1 - error)` from `calibration`, including
/// readout success for measurements.
///
/// Two-qubit IR gates count with their decomposition cost — `Rzz`/`CPhase`
/// and `Cz` as two CNOTs, `Swap` as three — so the estimate matches the
/// basis-lowered circuit without having to lower first. Applying
/// [`qcircuit::basis::to_basis`] before calling gives the same answer (up
/// to the single-qubit gates the lowering introduces).
///
/// VIC exists to maximize exactly this quantity (Figure 10).
///
/// # Panics
///
/// Panics if the circuit applies a two-qubit gate across an uncalibrated
/// pair (routed circuits never do).
pub fn success_probability(circuit: &Circuit, calibration: &Calibration) -> f64 {
    let mut p = 1.0;
    for instr in circuit.iter() {
        match instr.gate() {
            Gate::Measure => p *= 1.0 - calibration.readout_error(instr.q0()),
            Gate::Id => {}
            g if g.arity() == 1 => p *= 1.0 - calibration.single_qubit_error(instr.q0()),
            g => {
                let cnot_success = calibration.cnot_success(instr.q0(), instr.q1());
                let cnots = match g {
                    Gate::Cnot => 1,
                    Gate::Swap => 3,
                    _ => 2, // Rzz, CPhase, Cz lower to two CNOTs
                };
                p *= cnot_success.powi(cnots);
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use qhw::Topology;

    fn uniform(topology: &Topology, cnot_e: f64) -> Calibration {
        Calibration::uniform(topology, cnot_e, 0.0, 0.0)
    }

    #[test]
    fn empty_circuit_has_unit_success() {
        let topo = Topology::linear(2);
        let cal = uniform(&topo, 0.1);
        assert_eq!(success_probability(&Circuit::new(2), &cal), 1.0);
    }

    #[test]
    fn cnot_swap_and_rzz_weights() {
        let topo = Topology::linear(2);
        let cal = uniform(&topo, 0.1);
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        assert!((success_probability(&c, &cal) - 0.9).abs() < 1e-12);
        let mut s = Circuit::new(2);
        s.swap(0, 1);
        assert!((success_probability(&s, &cal) - 0.9f64.powi(3)).abs() < 1e-12);
        let mut z = Circuit::new(2);
        z.rzz(0.3, 0, 1);
        assert!((success_probability(&z, &cal) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn single_qubit_and_readout_count() {
        let topo = Topology::linear(2);
        let cal = Calibration::uniform(&topo, 0.1, 0.01, 0.05);
        let mut c = Circuit::new(2);
        c.h(0);
        c.measure(0);
        let want = 0.99 * 0.95;
        assert!((success_probability(&c, &cal) - want).abs() < 1e-12);
    }

    #[test]
    fn product_decreases_with_gate_count() {
        let topo = Topology::linear(3);
        let cal = uniform(&topo, 0.02);
        let mut short = Circuit::new(3);
        short.cx(0, 1);
        let mut long = short.clone();
        long.cx(1, 2);
        long.cx(0, 1);
        assert!(success_probability(&long, &cal) < success_probability(&short, &cal));
    }

    #[test]
    fn reliable_edge_beats_unreliable_edge() {
        let topo = Topology::linear(3);
        let cal = Calibration::from_cnot_errors(&topo, &[((0, 1), 0.01), ((1, 2), 0.2)], 0.0, 0.0);
        let mut good = Circuit::new(3);
        good.cx(0, 1);
        let mut bad = Circuit::new(3);
        bad.cx(1, 2);
        assert!(success_probability(&good, &cal) > success_probability(&bad, &cal));
    }
}
