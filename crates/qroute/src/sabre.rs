//! A SABRE-style lookahead router (Li et al., ASPLOS'19 — the paper's
//! \[57\]) as an alternative backend to the layer-synchronous router in
//! [`crate::route`].
//!
//! Instead of satisfying one concurrency layer at a time, SABRE maintains
//! the *front layer* of the circuit's dependency DAG and picks each SWAP
//! to minimize a cost that mixes the front layer's distances with a
//! lookahead over the gates behind it. The repository uses it as an
//! ablation: the headline experiments run the layer-synchronous backend
//! (matching the paper's qiskit-era semantics), and the
//! `ablation_routers` binary quantifies how the methodology rankings hold
//! up under a stronger router.

use qcircuit::{Circuit, Instruction};
use qhw::Topology;

use crate::{Layout, RouteResult, RoutingMetric};

/// Tuning parameters for [`route_sabre`].
#[derive(Debug, Clone, Copy)]
pub struct SabreOptions {
    /// Number of upcoming gates in the lookahead (extended) set.
    pub extended_size: usize,
    /// Relative weight of the extended set in the SWAP score.
    pub extended_weight: f64,
}

impl Default for SabreOptions {
    fn default() -> Self {
        SabreOptions {
            extended_size: 20,
            extended_weight: 0.5,
        }
    }
}

/// Routes `circuit` with the SABRE heuristic. Semantics match
/// [`crate::route`]: the result is coupling-compliant and equivalent to
/// the input up to the final layout permutation.
///
/// # Panics
///
/// Panics under the same conditions as [`crate::route`].
pub fn route_sabre(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
    options: &SabreOptions,
) -> RouteResult {
    assert!(
        circuit.num_qubits() <= topology.num_qubits(),
        "circuit has {} qubits but topology {} only {}",
        circuit.num_qubits(),
        topology.name(),
        topology.num_qubits()
    );
    assert_eq!(
        initial_layout.num_physical(),
        topology.num_qubits(),
        "layout and topology disagree on physical qubit count"
    );

    let instrs = circuit.instructions();
    let n_logical = circuit.num_qubits();
    // Dependency structure: for each instruction, the count of per-qubit
    // predecessors not yet executed; per qubit, the queue of instruction
    // indices in program order.
    let mut per_qubit: Vec<std::collections::VecDeque<usize>> =
        vec![std::collections::VecDeque::new(); n_logical];
    for (idx, instr) in instrs.iter().enumerate() {
        for q in instr.qubit_vec() {
            per_qubit[q].push_back(idx);
        }
    }
    let ready = |idx: usize, per_qubit: &[std::collections::VecDeque<usize>]| -> bool {
        instrs[idx]
            .qubit_vec()
            .iter()
            .all(|&q| per_qubit[q].front() == Some(&idx))
    };

    let mut layout = initial_layout;
    let mut out = Circuit::new(topology.num_qubits());
    let mut swap_count = 0usize;
    let mut executed = vec![false; instrs.len()];
    let mut remaining = instrs.len();
    // Anti-livelock: consecutive SWAPs without executing any gate.
    let mut stagnation = 0usize;
    let stagnation_cap = 4 * topology.num_qubits() + 16;

    while remaining > 0 {
        // Execute every ready gate that is executable now.
        let mut progressed = false;
        loop {
            let mut executed_this_round = false;
            for q in 0..n_logical {
                let Some(&idx) = per_qubit[q].front() else {
                    continue;
                };
                if executed[idx] || !ready(idx, &per_qubit) {
                    continue;
                }
                let instr = &instrs[idx];
                let executable = instr.gate().arity() == 1
                    || topology.are_coupled(layout.phys(instr.q0()), layout.phys(instr.q1()));
                if executable {
                    out.push(instr.remap(|l| layout.phys(l)))
                        .expect("router emits in-range instructions");
                    executed[idx] = true;
                    remaining -= 1;
                    for oq in instr.qubit_vec() {
                        per_qubit[oq].pop_front();
                    }
                    executed_this_round = true;
                    progressed = true;
                }
            }
            if !executed_this_round {
                break;
            }
        }
        if remaining == 0 {
            break;
        }
        if progressed {
            stagnation = 0;
        }

        // Front layer: ready two-qubit gates that are not adjacent.
        let front: Vec<&Instruction> = (0..n_logical)
            .filter_map(|q| per_qubit[q].front().copied())
            .filter(|&idx| ready(idx, &per_qubit) && instrs[idx].gate().arity() == 2)
            .map(|idx| &instrs[idx])
            .collect();
        assert!(
            !front.is_empty(),
            "no executable gates yet gates remain: circular dependency bug"
        );
        // Extended set: the next few two-qubit gates in program order
        // beyond the front.
        let extended: Vec<&Instruction> = instrs
            .iter()
            .enumerate()
            .filter(|(idx, i)| !executed[*idx] && i.gate().arity() == 2)
            .map(|(_, i)| i)
            .take(options.extended_size + front.len())
            .skip(front.len())
            .collect();

        // Candidate SWAPs: edges touching a front-gate operand.
        let score = |layout: &Layout, e: usize, w: usize| -> f64 {
            let reloc = |p: usize| {
                if p == e {
                    w
                } else if p == w {
                    e
                } else {
                    p
                }
            };
            let dist_sum = |set: &[&Instruction]| -> f64 {
                set.iter()
                    .map(|i| metric.dist(reloc(layout.phys(i.q0())), reloc(layout.phys(i.q1()))))
                    .sum()
            };
            dist_sum(&front) / front.len() as f64
                + if extended.is_empty() {
                    0.0
                } else {
                    options.extended_weight * dist_sum(&extended) / extended.len() as f64
                }
        };
        let mut best: Option<(f64, usize, usize)> = None;
        for instr in &front {
            for endpoint in [layout.phys(instr.q0()), layout.phys(instr.q1())] {
                for w in topology.graph().neighbors(endpoint) {
                    let s = score(&layout, endpoint, w);
                    let better = match best {
                        Some((bs, be, bw)) => {
                            s < bs - 1e-12 || ((s - bs).abs() <= 1e-12 && (endpoint, w) < (be, bw))
                        }
                        None => true,
                    };
                    if better {
                        best = Some((s, endpoint, w));
                    }
                }
            }
        }
        let (_, e, w) = best.expect("front gates have neighbors on a connected device");
        stagnation += 1;
        if stagnation > stagnation_cap {
            // Forced resolution of the closest front gate along its
            // cheapest path (guaranteed progress).
            let gate = front
                .iter()
                .min_by(|x, y| {
                    metric
                        .dist(layout.phys(x.q0()), layout.phys(x.q1()))
                        .total_cmp(&metric.dist(layout.phys(y.q0()), layout.phys(y.q1())))
                })
                .expect("front is non-empty");
            let mut pa = layout.phys(gate.q0());
            let pb = layout.phys(gate.q1());
            while !topology.are_coupled(pa, pb) {
                let step = topology
                    .graph()
                    .neighbors(pa)
                    .filter(|&x| metric.hop_dist(x, pb) < metric.hop_dist(pa, pb))
                    .min_by(|&x, &y| metric.dist(x, pb).total_cmp(&metric.dist(y, pb)))
                    .unwrap_or_else(|| {
                        panic!(
                            "physical qubits {pa} and {pb} are disconnected on {}",
                            topology.name()
                        )
                    });
                out.push(Instruction::two(qcircuit::Gate::Swap, pa, step))
                    .expect("in-range");
                layout.swap_physical(pa, step);
                swap_count += 1;
                pa = step;
            }
            stagnation = 0;
            continue;
        }
        out.push(Instruction::two(qcircuit::Gate::Swap, e, w))
            .expect("in-range");
        layout.swap_physical(e, w);
        swap_count += 1;
    }

    RouteResult {
        circuit: out,
        final_layout: layout,
        swap_count,
        // SABRE resolves gates one at a time off a dependency front, so
        // there are no layer boundaries to attribute SWAPs to.
        layer_stats: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{routed_equivalent, satisfies_coupling};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn qaoa_circuit(n: usize, edges: &[(usize, usize)]) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for &(a, b) in edges {
            c.rzz(0.4, a, b);
        }
        for q in 0..n {
            c.rx(0.7, q);
        }
        c
    }

    #[test]
    fn sabre_produces_compliant_equivalent_circuits() {
        let topo = Topology::ring(10);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..4 {
            let g = qgraph::generators::connected_erdos_renyi(7, 0.5, 1000, &mut rng).unwrap();
            let edges: Vec<(usize, usize)> = g.edges().map(|e| (e.a(), e.b())).collect();
            let c = qaoa_circuit(7, &edges);
            let layout = Layout::random(7, 10, &mut rng);
            let metric = RoutingMetric::hops(&topo);
            let r = route_sabre(&c, &topo, layout.clone(), &metric, &SabreOptions::default());
            assert!(satisfies_coupling(&r.circuit, &topo));
            assert!(routed_equivalent(&c, &r.circuit, &layout, &r.final_layout));
        }
    }

    #[test]
    fn sabre_handles_adjacent_only_circuits_without_swaps() {
        let topo = Topology::linear(4);
        let c = qaoa_circuit(4, &[(0, 1), (1, 2), (2, 3)]);
        let metric = RoutingMetric::hops(&topo);
        let r = route_sabre(
            &c,
            &topo,
            Layout::trivial(4, 4),
            &metric,
            &SabreOptions::default(),
        );
        assert_eq!(r.swap_count, 0);
    }

    #[test]
    fn sabre_terminates_on_dense_workloads() {
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(4);
        let g = qgraph::generators::connected_erdos_renyi(20, 0.5, 1000, &mut rng).unwrap();
        let edges: Vec<(usize, usize)> = g.edges().map(|e| (e.a(), e.b())).collect();
        let c = qaoa_circuit(20, &edges);
        let metric = RoutingMetric::hops(&topo);
        let r = route_sabre(
            &c,
            &topo,
            Layout::random(20, 20, &mut rng),
            &metric,
            &SabreOptions::default(),
        );
        assert!(satisfies_coupling(&r.circuit, &topo));
        assert_eq!(r.circuit.count_gate("rzz"), edges.len());
    }

    #[test]
    fn lookahead_weight_zero_still_works() {
        let topo = Topology::grid(3, 3);
        let c = qaoa_circuit(9, &[(0, 8), (1, 7), (2, 6)]);
        let metric = RoutingMetric::hops(&topo);
        let opts = SabreOptions {
            extended_size: 0,
            extended_weight: 0.0,
        };
        let r = route_sabre(&c, &topo, Layout::trivial(9, 9), &metric, &opts);
        assert!(satisfies_coupling(&r.circuit, &topo));
    }

    #[test]
    fn sabre_often_beats_layer_router_on_swaps() {
        // Not guaranteed per-instance, but over a batch the lookahead
        // should not be worse by more than a small margin.
        let topo = Topology::ibmq_20_tokyo();
        let metric = RoutingMetric::hops(&topo);
        let mut rng = StdRng::seed_from_u64(5);
        let (mut layer_swaps, mut sabre_swaps) = (0usize, 0usize);
        for _ in 0..6 {
            let g = qgraph::generators::connected_erdos_renyi(16, 0.3, 1000, &mut rng).unwrap();
            let edges: Vec<(usize, usize)> = g.edges().map(|e| (e.a(), e.b())).collect();
            let c = qaoa_circuit(16, &edges);
            let layout = Layout::random(16, 20, &mut rng);
            layer_swaps += crate::route(&c, &topo, layout.clone(), &metric).swap_count;
            sabre_swaps +=
                route_sabre(&c, &topo, layout, &metric, &SabreOptions::default()).swap_count;
        }
        assert!(
            (sabre_swaps as f64) < 1.25 * layer_swaps as f64,
            "sabre {sabre_swaps} vs layer-synchronous {layer_swaps}"
        );
    }
}
