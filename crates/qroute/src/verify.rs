//! Post-routing verification: coupling compliance and functional
//! equivalence.

use qcircuit::{Circuit, Gate, Instruction};
use qhw::Topology;
use qsim::StateVector;

use crate::Layout;

/// Whether every two-qubit gate in `circuit` acts on a coupled physical
/// pair of `topology`.
pub fn satisfies_coupling(circuit: &Circuit, topology: &Topology) -> bool {
    circuit
        .iter()
        .filter(|i| i.gate().arity() == 2)
        .all(|i| topology.are_coupled(i.q0(), i.q1()))
}

/// Checks that a routed physical circuit computes the same state as the
/// logical circuit, accounting for the qubit permutation the SWAPs induce.
///
/// Simulates both circuits (measurements ignored) and compares the logical
/// state against the physical state with the *final* layout's inverse
/// permutation applied. Feasible up to ~10 physical qubits per call —
/// intended for tests.
///
/// # Panics
///
/// Panics if `final_layout` disagrees with the physical circuit's qubit
/// count, or if the state would exceed the simulator's qubit limit.
pub fn routed_equivalent(
    logical: &Circuit,
    physical: &Circuit,
    initial_layout: &Layout,
    final_layout: &Layout,
) -> bool {
    let n = physical.num_qubits();
    // Embed the logical circuit on physical qubits via the *initial*
    // layout, then route-free simulate; separately simulate the routed
    // circuit and undo its data movement by swapping each logical qubit's
    // final home back to its initial home.
    let embedded = logical.remapped(n, |l| initial_layout.phys(l));
    let want = StateVector::from_circuit(&embedded);

    let mut routed = physical.clone();
    // Append SWAPs returning every logical qubit from final to initial
    // position (selection-sort over the permutation).
    let mut current: Vec<usize> = (0..logical.num_qubits())
        .map(|l| final_layout.phys(l))
        .collect();
    for l in 0..logical.num_qubits() {
        let target = initial_layout.phys(l);
        let here = current[l];
        if here == target {
            continue;
        }
        routed
            .push(Instruction::two(Gate::Swap, here, target))
            .expect("swap operands in range");
        // Whichever logical qubit occupied `target` moves to `here`.
        for slot in current.iter_mut() {
            if *slot == target {
                *slot = here;
            }
        }
        current[l] = target;
    }
    let got = StateVector::from_circuit(&routed);
    got.fidelity(&want) > 1.0 - 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{route, RoutingMetric};

    #[test]
    fn coupling_violations_detected() {
        let topo = Topology::linear(3);
        let mut bad = Circuit::new(3);
        bad.cx(0, 2);
        assert!(!satisfies_coupling(&bad, &topo));
        let mut good = Circuit::new(3);
        good.cx(0, 1);
        good.h(2);
        assert!(satisfies_coupling(&good, &topo));
    }

    #[test]
    fn equivalence_detects_wrong_circuit() {
        let topo = Topology::linear(3);
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 2);
        let layout = Layout::trivial(3, 3);
        let r = route(&c, &topo, layout.clone(), &RoutingMetric::hops(&topo));
        assert!(routed_equivalent(&c, &r.circuit, &layout, &r.final_layout));

        // Tamper with the routed circuit: no longer equivalent.
        let mut tampered = r.circuit.clone();
        tampered.x(1);
        assert!(!routed_equivalent(&c, &tampered, &layout, &r.final_layout));
    }

    #[test]
    fn equivalence_with_nontrivial_initial_layout() {
        let topo = Topology::ring(5);
        let mut c = Circuit::new(4);
        c.h(0);
        c.rzz(0.8, 0, 3);
        c.cx(1, 2);
        c.rx(0.2, 3);
        let layout = Layout::from_mapping(vec![2, 0, 4, 1], 5);
        let r = route(&c, &topo, layout.clone(), &RoutingMetric::hops(&topo));
        assert!(satisfies_coupling(&r.circuit, &topo));
        assert!(routed_equivalent(&c, &r.circuit, &layout, &r.final_layout));
    }
}
