use std::sync::Arc;

use qgraph::shortest_path::{DistanceMatrix, WeightedDistanceMatrix};
use qhw::{Calibration, HardwareContext, Topology};

/// The distance notion the router (and IC/VIC layer formation) uses.
///
/// * **Hops** — every coupling edge costs 1; distance is the shortest path
///   length (Figure 6(c)). Used by NAIVE, QAIM, IP and IC.
/// * **Reliability** — edge `(u, v)` costs `1 / cnot_success(u, v)`, so
///   low-reliability links look longer and routing avoids them
///   (Figure 6(d)). Used by VIC.
///
/// Both variants carry the hop-distance matrix: the router's SWAP-count
/// potential is always measured in hops (each SWAP changes a hop distance
/// by integral amounts, guaranteeing fast termination), while the
/// reliability weights steer *which* equal-hop path is taken and which
/// gates the incremental layer former prioritizes.
///
/// The distance matrices are held behind [`Arc`]: building a metric from a
/// [`HardwareContext`] ([`RoutingMetric::from_context`]) shares the
/// context's cached matrices instead of re-running Floyd–Warshall, and
/// cloning a metric clones pointers, not `O(n^2)` data.
#[derive(Debug, Clone)]
pub struct RoutingMetric {
    hops: Arc<DistanceMatrix>,
    /// The hop matrix pre-converted to dense `f64` (`INFINITY` =
    /// unreachable): [`RoutingMetric::dist`] for the unit metric is one
    /// slice read from this table instead of an `Option` round-trip plus
    /// an integer→float conversion per lookup — the difference dominates
    /// the router's candidate-evaluation loop.
    hops_f64: Arc<Vec<f64>>,
    n: usize,
    weighted: Option<Weighted>,
}

#[derive(Debug, Clone)]
struct Weighted {
    distances: Arc<WeightedDistanceMatrix>,
    /// Dense per-edge weights for local SWAP-step costs.
    edge_weight: Arc<Vec<f64>>,
    n: usize,
}

/// Builds the dense `1 / success` per-edge weight table VIC's local SWAP
/// costs read.
fn edge_weights(topology: &Topology, calibration: &Calibration) -> Vec<f64> {
    let n = topology.num_qubits();
    let mut edge_weight = vec![f64::INFINITY; n * n];
    for e in topology.graph().edges() {
        let w = 1.0 / calibration.cnot_success(e.a(), e.b());
        edge_weight[e.a() * n + e.b()] = w;
        edge_weight[e.b() * n + e.a()] = w;
    }
    edge_weight
}

impl RoutingMetric {
    /// Unit-distance metric over `topology`.
    ///
    /// Runs Floyd–Warshall afresh; prefer [`RoutingMetric::from_context`]
    /// when a [`HardwareContext`] is available.
    pub fn hops(topology: &Topology) -> Self {
        let hops = Arc::new(topology.distances());
        let hops_f64 = Arc::new(hops.to_f64_flat());
        RoutingMetric {
            hops,
            hops_f64,
            n: topology.num_qubits(),
            weighted: None,
        }
    }

    /// Reliability-weighted metric over `topology` with `calibration`.
    ///
    /// Runs Floyd–Warshall afresh (twice); prefer
    /// [`RoutingMetric::from_context`] when a [`HardwareContext`] is
    /// available.
    pub fn reliability(topology: &Topology, calibration: &Calibration) -> Self {
        let n = topology.num_qubits();
        let hops = Arc::new(topology.distances());
        let hops_f64 = Arc::new(hops.to_f64_flat());
        RoutingMetric {
            hops,
            hops_f64,
            n,
            weighted: Some(Weighted {
                distances: Arc::new(topology.weighted_distances(calibration)),
                edge_weight: Arc::new(edge_weights(topology, calibration)),
                n,
            }),
        }
    }

    /// A metric sharing `context`'s cached distance matrices — no
    /// shortest-path recomputation.
    ///
    /// With `variation_aware` set, the context must carry calibration
    /// data (and therefore a weighted matrix); returns `None` otherwise.
    pub fn from_context(context: &HardwareContext, variation_aware: bool) -> Option<Self> {
        let weighted = if variation_aware {
            Some(Weighted {
                distances: Arc::clone(context.weighted_distances()?),
                // The context caches the dense edge-weight table alongside
                // the weighted matrix, so metric construction in the batch
                // and retry hot paths allocates nothing O(n^2).
                edge_weight: Arc::clone(context.edge_weights()?),
                n: context.num_qubits(),
            })
        } else {
            None
        };
        Some(RoutingMetric {
            hops: Arc::clone(context.distances()),
            hops_f64: Arc::clone(context.distances_f64()),
            n: context.num_qubits(),
            weighted,
        })
    }

    /// The metric distance between physical qubits `a` and `b` (weighted
    /// when variation-aware, hop count otherwise); `f64::INFINITY` when
    /// disconnected.
    pub fn dist(&self, a: usize, b: usize) -> f64 {
        self.dist_flat()[a * self.n + b]
    }

    /// The dense row-major metric-distance table [`RoutingMetric::dist`]
    /// reads (`f64::INFINITY` = disconnected): the weighted matrix when
    /// variation-aware, the pre-converted hop table otherwise. Hot loops
    /// hoist this once and index it directly.
    pub fn dist_flat(&self) -> &[f64] {
        match &self.weighted {
            Some(w) => w.distances.flat(),
            None => &self.hops_f64,
        }
    }

    /// The dense row-major hop-distance table (`usize::MAX` =
    /// disconnected) behind [`RoutingMetric::hop_dist`].
    pub fn hops_flat(&self) -> &[usize] {
        self.hops.flat()
    }

    /// Row stride of [`RoutingMetric::dist_flat`] / `hops_flat`: the
    /// physical qubit count.
    pub fn num_physical(&self) -> usize {
        self.n
    }

    /// The hop distance between physical qubits `a` and `b`, regardless of
    /// variation awareness. `usize::MAX` when disconnected.
    pub fn hop_dist(&self, a: usize, b: usize) -> usize {
        self.hops.flat()[a * self.n + b]
    }

    /// The cost of traversing the single coupling edge `(a, b)` (1 for
    /// hops; `1 / success` for reliability). `f64::INFINITY` when `(a, b)`
    /// is not an edge.
    pub fn edge_cost(&self, a: usize, b: usize) -> f64 {
        match &self.weighted {
            Some(w) => w.edge_weight[a * w.n + b],
            None => match self.hops.get(a, b) {
                Some(1) => 1.0,
                _ => f64::INFINITY,
            },
        }
    }

    /// The *routing cost* of SWAPping across the coupling edge `(a, b)`:
    /// a hop-dominant composite for the variation-aware metric — each hop
    /// costs a large constant plus the log-infidelity of the three CNOTs a
    /// SWAP lowers to (`3 · (−ln success)`), so among all minimum-hop
    /// paths the most reliable one wins. (Unrestricted reliability detours
    /// — the VQM policy the paper cites — were measured to cost more
    /// success probability in extra SWAPs than they recover on this
    /// backend; see DESIGN.md.) Constant 1 for the hop metric.
    /// `f64::INFINITY` when `(a, b)` is not an edge.
    pub fn swap_cost(&self, a: usize, b: usize) -> f64 {
        const HOP_COST: f64 = 1.0e6;
        match &self.weighted {
            Some(w) => {
                let inv_s = w.edge_weight[a * w.n + b]; // 1 / success
                if inv_s.is_finite() {
                    HOP_COST + 3.0 * inv_s.ln()
                } else {
                    f64::INFINITY
                }
            }
            None => match self.hops.get(a, b) {
                Some(1) => 1.0,
                _ => f64::INFINITY,
            },
        }
    }

    /// Whether this is the variation-aware metric.
    pub fn is_variation_aware(&self) -> bool {
        self.weighted.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::shortest_path::apsp_invocations;

    #[test]
    fn hops_metric_matches_figure_6c() {
        let topo = fig6_topology();
        let m = RoutingMetric::hops(&topo);
        for (v, want) in [(1, 1.0), (2, 2.0), (3, 3.0), (4, 2.0), (5, 1.0)] {
            assert_eq!(m.dist(0, v), want);
            assert_eq!(m.hop_dist(0, v), want as usize);
        }
        assert_eq!(m.edge_cost(0, 1), 1.0);
        assert_eq!(m.edge_cost(0, 2), f64::INFINITY);
    }

    #[test]
    fn reliability_metric_matches_figure_6d() {
        let (topo, cal) = fig6_calibrated();
        let m = RoutingMetric::reliability(&topo, &cal);
        for (v, want) in [(1, 1.11), (2, 2.29), (3, 3.41), (4, 2.34), (5, 1.22)] {
            assert!(
                (m.dist(0, v) - want).abs() < 0.01,
                "d(0,{v}) = {}",
                m.dist(0, v)
            );
        }
        // Hop distances remain available underneath.
        assert_eq!(m.hop_dist(0, 3), 3);
        assert!((m.edge_cost(0, 1) - 1.0 / 0.90).abs() < 1e-12);
        assert!(m.is_variation_aware());
        assert!(!RoutingMetric::hops(&topo).is_variation_aware());
    }

    #[test]
    fn from_context_matches_direct_construction() {
        let (topo, cal) = fig6_calibrated();
        let ctx = HardwareContext::with_calibration(topo.clone(), cal.clone());
        let direct = RoutingMetric::reliability(&topo, &cal);
        let shared = RoutingMetric::from_context(&ctx, true).expect("calibrated context");
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(direct.dist(u, v), shared.dist(u, v));
                assert_eq!(direct.hop_dist(u, v), shared.hop_dist(u, v));
                assert_eq!(direct.edge_cost(u, v), shared.edge_cost(u, v));
            }
        }
        let hops = RoutingMetric::from_context(&ctx, false).expect("hops always available");
        assert!(!hops.is_variation_aware());
    }

    #[test]
    fn from_context_recomputes_nothing() {
        let ctx = HardwareContext::with_calibration(fig6_calibrated().0, fig6_calibrated().1);
        let before = apsp_invocations();
        let _hops = RoutingMetric::from_context(&ctx, false).unwrap();
        let _vic = RoutingMetric::from_context(&ctx, true).unwrap();
        assert_eq!(apsp_invocations(), before);
    }

    #[test]
    fn from_context_requires_calibration_for_variation_awareness() {
        let ctx = HardwareContext::new(fig6_topology());
        assert!(RoutingMetric::from_context(&ctx, true).is_none());
        assert!(RoutingMetric::from_context(&ctx, false).is_some());
    }

    /// The hypothetical 6-qubit device of Figure 6(a).
    fn fig6_topology() -> Topology {
        Topology::from_graph(
            "fig6",
            qgraph::Graph::from_edges(6, [(0, 1), (0, 5), (1, 2), (1, 4), (2, 3), (3, 4), (4, 5)])
                .unwrap(),
        )
    }

    fn fig6_calibrated() -> (Topology, Calibration) {
        let topo = fig6_topology();
        let cal = Calibration::from_cnot_errors(
            &topo,
            &[
                ((0, 1), 0.10),
                ((0, 5), 0.18),
                ((1, 2), 0.15),
                ((1, 4), 0.19),
                ((2, 3), 0.11),
                ((3, 4), 0.12),
                ((4, 5), 0.16),
            ],
            1e-3,
            2e-2,
        );
        (topo, cal)
    }
}
