use rand::seq::SliceRandom;
use rand::Rng;

/// A logical→physical qubit mapping.
///
/// Logical qubits are the `0..k` indices of the input circuit; physical
/// qubits are the `0..n` nodes of the hardware coupling graph (`k <= n`).
/// SWAP insertion permutes the mapping as it runs; the post-routing layout
/// is what IC/VIC feed into the next incremental step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// `log_to_phys[l]` = physical position of logical qubit `l`.
    log_to_phys: Vec<usize>,
    /// `phys_to_log[p]` = logical qubit at physical `p`, if any.
    phys_to_log: Vec<Option<usize>>,
}

impl Layout {
    /// Builds a layout from an explicit assignment: `mapping[l]` is the
    /// physical home of logical qubit `l`, over `num_physical` hardware
    /// qubits.
    ///
    /// # Panics
    ///
    /// Panics if a physical index is out of range or assigned twice.
    pub fn from_mapping(mapping: Vec<usize>, num_physical: usize) -> Self {
        assert!(
            mapping.len() <= num_physical,
            "{} logical qubits cannot fit on {num_physical} physical qubits",
            mapping.len()
        );
        let mut phys_to_log = vec![None; num_physical];
        for (l, &p) in mapping.iter().enumerate() {
            assert!(p < num_physical, "physical qubit {p} out of range");
            assert!(
                phys_to_log[p].is_none(),
                "physical qubit {p} assigned to two logical qubits"
            );
            phys_to_log[p] = Some(l);
        }
        Layout {
            log_to_phys: mapping,
            phys_to_log,
        }
    }

    /// The identity layout: logical `l` on physical `l`.
    ///
    /// # Panics
    ///
    /// Panics if `num_logical > num_physical`.
    pub fn trivial(num_logical: usize, num_physical: usize) -> Self {
        Layout::from_mapping((0..num_logical).collect(), num_physical)
    }

    /// A uniformly random layout — the paper's NAIVE initial mapping.
    ///
    /// # Panics
    ///
    /// Panics if `num_logical > num_physical`.
    pub fn random<R: Rng + ?Sized>(num_logical: usize, num_physical: usize, rng: &mut R) -> Self {
        assert!(num_logical <= num_physical, "not enough physical qubits");
        let mut phys: Vec<usize> = (0..num_physical).collect();
        phys.shuffle(rng);
        Layout::from_mapping(phys[..num_logical].to_vec(), num_physical)
    }

    /// Number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.log_to_phys.len()
    }

    /// Number of physical qubits.
    pub fn num_physical(&self) -> usize {
        self.phys_to_log.len()
    }

    /// Physical home of logical qubit `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn phys(&self, l: usize) -> usize {
        self.log_to_phys[l]
    }

    /// Logical occupant of physical qubit `p` (`None` if free).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn logical_at(&self, p: usize) -> Option<usize> {
        self.phys_to_log[p]
    }

    /// Applies a SWAP between physical qubits `a` and `b`, exchanging their
    /// logical occupants (either may be empty).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn swap_physical(&mut self, a: usize, b: usize) {
        let la = self.phys_to_log[a];
        let lb = self.phys_to_log[b];
        self.phys_to_log[a] = lb;
        self.phys_to_log[b] = la;
        if let Some(l) = la {
            self.log_to_phys[l] = b;
        }
        if let Some(l) = lb {
            self.log_to_phys[l] = a;
        }
    }

    /// The logical→physical assignment as a slice (`[l] -> p`).
    pub fn as_mapping(&self) -> &[usize] {
        &self.log_to_phys
    }

    /// Iterates over `(logical, physical)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.log_to_phys.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trivial_layout_is_identity() {
        let l = Layout::trivial(3, 5);
        assert_eq!(l.phys(0), 0);
        assert_eq!(l.phys(2), 2);
        assert_eq!(l.logical_at(2), Some(2));
        assert_eq!(l.logical_at(4), None);
        assert_eq!(l.num_logical(), 3);
        assert_eq!(l.num_physical(), 5);
    }

    #[test]
    fn from_mapping_round_trips() {
        let l = Layout::from_mapping(vec![7, 12, 8], 20);
        assert_eq!(l.phys(1), 12);
        assert_eq!(l.logical_at(12), Some(1));
        assert_eq!(l.logical_at(0), None);
        assert_eq!(l.as_mapping(), &[7, 12, 8]);
    }

    #[test]
    #[should_panic]
    fn duplicate_assignment_panics() {
        let _ = Layout::from_mapping(vec![1, 1], 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_assignment_panics() {
        let _ = Layout::from_mapping(vec![5], 4);
    }

    #[test]
    fn swap_physical_moves_occupants() {
        let mut l = Layout::from_mapping(vec![0, 1], 3);
        l.swap_physical(1, 2); // logical 1 moves to physical 2
        assert_eq!(l.phys(1), 2);
        assert_eq!(l.logical_at(1), None);
        assert_eq!(l.logical_at(2), Some(1));
        l.swap_physical(0, 2); // logical 0 <-> logical 1
        assert_eq!(l.phys(0), 2);
        assert_eq!(l.phys(1), 0);
    }

    #[test]
    fn swap_with_empty_slot() {
        let mut l = Layout::from_mapping(vec![0], 3);
        l.swap_physical(0, 2);
        assert_eq!(l.phys(0), 2);
        assert_eq!(l.logical_at(0), None);
    }

    #[test]
    fn random_layout_is_valid_and_seeded() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Layout::random(12, 20, &mut rng);
        assert_eq!(a.num_logical(), 12);
        // injective
        let mut seen = std::collections::HashSet::new();
        for (_, p) in a.iter() {
            assert!(seen.insert(p));
        }
        let mut rng2 = StdRng::seed_from_u64(10);
        assert_eq!(a, Layout::random(12, 20, &mut rng2));
    }

    #[test]
    fn iter_yields_all_pairs() {
        let l = Layout::from_mapping(vec![4, 2], 5);
        let pairs: Vec<_> = l.iter().collect();
        assert_eq!(pairs, vec![(0, 4), (1, 2)]);
    }
}
