//! The backend circuit compiler: SWAP insertion against hardware coupling
//! constraints.
//!
//! This crate plays the role of the "backend compiler" box in the paper's
//! Figure 2 workflow (qiskit in the authors' experiments): given a logical
//! circuit, a target [`qhw::Topology`] and an initial logical→physical
//! [`Layout`], it partitions the circuit into concurrency layers and adds
//! SWAP gates before each layer until every two-qubit gate acts on coupled
//! physical qubits (\[47\], \[48\] of the paper).
//!
//! Routing distances come from a [`RoutingMetric`]:
//!
//! * [`RoutingMetric::hops`] — unit edge weights (NAIVE/QAIM/IP/IC);
//! * [`RoutingMetric::reliability`] — `1 / success_rate` edge weights so
//!   SWAP paths prefer reliable links (VIC, Figure 6(d)).
//!
//! # Examples
//!
//! ```
//! use qcircuit::Circuit;
//! use qhw::Topology;
//! use qroute::{route, Layout, RoutingMetric};
//!
//! let topo = Topology::linear(3);
//! let mut c = Circuit::new(3);
//! c.cx(0, 2); // not coupled on a path: needs one SWAP
//! let metric = RoutingMetric::hops(&topo);
//! let out = route(&c, &topo, Layout::trivial(3, 3), &metric);
//! assert_eq!(out.swap_count, 1);
//! assert!(qroute::satisfies_coupling(&out.circuit, &topo));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fidelity;
mod layout;
mod metric;
mod router;
pub mod sabre;
mod verify;

pub use error::RouteError;
pub use fidelity::success_probability;
pub use layout::Layout;
pub use metric::RoutingMetric;
pub use router::{route, route_append, try_route, AppendStats, RouteLayerStat, RouteResult};
pub use verify::{routed_equivalent, satisfies_coupling};
