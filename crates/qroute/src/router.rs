use qcircuit::layers::asap_layers;
use qcircuit::{Circuit, Instruction};
use qhw::Topology;

use crate::{Layout, RouteError, RoutingMetric};

/// The output of [`route`]: a hardware-compliant physical circuit plus the
/// mapping state after the inserted SWAPs.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// The physical circuit: every two-qubit gate acts on a coupled pair.
    pub circuit: Circuit,
    /// The logical→physical layout after routing — IC/VIC feed this into
    /// the next incremental compilation step (paper §IV-C Step 2).
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
    /// Per-ASAP-layer routing stats, one entry per layer that contained
    /// at least one two-qubit gate, in execution order. The compile
    /// explain report attributes SWAP cost to individual layers with
    /// these.
    pub layer_stats: Vec<RouteLayerStat>,
}

/// Routing stats for one ASAP concurrency layer of two-qubit gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteLayerStat {
    /// The layer's two-qubit gates as `(logical_a, logical_b)` pairs, in
    /// emission order.
    pub gates: Vec<(usize, usize)>,
    /// SWAPs inserted to make this layer executable.
    pub swaps: usize,
}

/// Routes a logical circuit onto `topology`, inserting SWAPs so every
/// two-qubit gate meets the coupling constraint.
///
/// The algorithm follows the layer-by-layer scheme of the paper's backend
/// references (\[47\], \[48\]): the circuit is partitioned into ASAP
/// concurrency layers, and each layer is routed as a unit — already
/// adjacent gates are emitted immediately, then the closest unsatisfied
/// gate is walked to adjacency one coupling edge at a time, with each step
/// chosen to also minimize the remaining gates' total distance (the
/// "considering many operations at the same time" rationale of §III).
/// SWAPs on disjoint qubits parallelize in the emitted stream via ASAP
/// scheduling. Single-qubit gates and measurements are emitted on their
/// mapped physical qubit directly.
///
/// Deterministic: all ties break toward the lowest qubit index.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the topology provides, the
/// layout is smaller than the circuit, or the coupling graph leaves some
/// required pair disconnected. Use [`try_route`] to receive these as
/// [`RouteError`] values instead.
pub fn route(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
) -> RouteResult {
    match try_route(circuit, topology, initial_layout, metric) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// [`route`] returning structural failures as [`RouteError`] values
/// instead of panicking — the form the `qcompile` pipeline and batch
/// drivers consume.
///
/// # Errors
///
/// Returns [`RouteError::CircuitTooLarge`], [`RouteError::LayoutTooSmall`]
/// or [`RouteError::LayoutMismatch`] when the inputs disagree on qubit
/// counts, and [`RouteError::Disconnected`] when the coupling graph leaves
/// a required pair unreachable.
pub fn try_route(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
) -> Result<RouteResult, RouteError> {
    if circuit.num_qubits() > topology.num_qubits() {
        return Err(RouteError::CircuitTooLarge {
            needed: circuit.num_qubits(),
            available: topology.num_qubits(),
            topology: topology.name().to_owned(),
        });
    }
    if initial_layout.num_logical() < circuit.num_qubits() {
        return Err(RouteError::LayoutTooSmall {
            covers: initial_layout.num_logical(),
            needed: circuit.num_qubits(),
        });
    }
    if initial_layout.num_physical() != topology.num_qubits() {
        return Err(RouteError::LayoutMismatch {
            layout_physical: initial_layout.num_physical(),
            topology_physical: topology.num_qubits(),
        });
    }

    let mut layout = initial_layout;
    let mut out = Circuit::new(topology.num_qubits());
    // Routing only permutes qubits; symbolic angles (and the table that
    // names them) pass through untouched.
    out.set_param_table(circuit.param_table().clone());
    let mut swap_count = 0usize;
    let mut layer_stats: Vec<RouteLayerStat> = Vec::new();
    let mut layer_marks: Vec<u64> = Vec::new();

    let q = qtrace::global();
    let span = q.span("qroute/route");
    for layer in asap_layers(circuit) {
        // Single-qubit work never constrains routing: emit it first.
        let mut two_qubit: Vec<&Instruction> = Vec::new();
        for instr in &layer {
            if instr.gate().arity() == 1 {
                emit(&mut out, instr.remap(|l| layout.phys(l)));
            } else {
                two_qubit.push(instr);
            }
        }
        let layer_swaps = route_layer(&two_qubit, topology, metric, &mut layout, &mut out)?;
        if !two_qubit.is_empty() {
            // One timeline marker per routed layer lets a trace show
            // where inside a route call the SWAP cost accrued. Only the
            // timestamp is captured here; the events flush in one batch
            // below so the loop stays off the recorder lock.
            if q.events_enabled() {
                layer_marks.push(qtrace::event::now_ns());
            }
            layer_stats.push(RouteLayerStat {
                gates: two_qubit.iter().map(|i| (i.q0(), i.q1())).collect(),
                swaps: layer_swaps,
            });
        }
        swap_count += layer_swaps;
    }
    if q.is_enabled() {
        // Per-layer numbers flush in one batch — taking the recorder lock
        // inside the layer loop shows up in the tracing-overhead budget.
        q.add("qroute/layers", layer_stats.len() as u64);
        let layer_swaps: Vec<u64> = layer_stats.iter().map(|l| l.swaps as u64).collect();
        q.observe_many("qroute/layer_swaps", &layer_swaps);
        q.add("qroute/swaps", swap_count as u64);
        q.gauge_max("qroute/routed_depth", out.depth() as u64);
        q.instants_at("qroute/layer", &layer_marks);
    }
    span.finish();

    Ok(RouteResult {
        circuit: out,
        final_layout: layout,
        swap_count,
        layer_stats,
    })
}

/// Routes one layer of two-qubit gates (disjoint qubits), emitting both
/// the SWAPs and the gates themselves. Returns the number of SWAPs
/// inserted.
///
/// Matches the backend semantics the paper builds on (\[47\], \[48\]): the
/// SWAPs synthesized before a layer bring **all** of the layer's gates
/// adjacent simultaneously, so the layer executes as one parallel block
/// ("SWAP gates are added between two layers to meet the hardware
/// constraints"). This makes the number of gate layers the dominant depth
/// factor - the property IP and IC exploit.
///
/// Strategy: greedy descent on the potential "total distance over all of
/// the layer's gates". Each step applies the candidate SWAP (an edge
/// touching an unsatisfied gate's endpoint) with the most negative
/// potential delta; on a plateau the farthest unsatisfied gate moves one
/// step closer instead (strictly decreasing its own distance). Plateau
/// moves are budgeted; if the budget runs out the layer finishes with a
/// serial emit-on-adjacency walk, which terminates unconditionally.
fn route_layer(
    layer: &[&Instruction],
    topology: &Topology,
    metric: &RoutingMetric,
    layout: &mut Layout,
    out: &mut Circuit,
) -> Result<usize, RouteError> {
    let mut swap_count = 0usize;
    if layer.is_empty() {
        return Ok(0);
    }
    let n = topology.num_qubits();
    // Plateau moves are forced swaps that the next improving step can
    // undo; a small budget keeps descent from thrashing on sparse devices
    // where simultaneous adjacency of a dense layer is very expensive —
    // past it, the serial emit-on-adjacency fallback is cheaper.
    let mut stalls_left = 4;
    let _ = n;
    // The descent potential is measured in hops: each improving swap
    // decreases the summed hop distance by at least 1, so the descent
    // terminates within the initial total hop distance. Weighted distances
    // only break ties, steering equal-hop choices toward reliable
    // couplings for the variation-aware metric.
    loop {
        let unsat: Vec<(usize, usize)> = layer
            .iter()
            .map(|i| (layout.phys(i.q0()), layout.phys(i.q1())))
            .filter(|&(pa, pb)| !topology.are_coupled(pa, pb))
            .collect();
        if unsat.is_empty() {
            // Simultaneously adjacent: emit the parallel block.
            for gate in layer {
                let pa = layout.phys(gate.q0());
                let pb = layout.phys(gate.q1());
                emit(out, Instruction::two(gate.gate(), pa, pb));
            }
            return Ok(swap_count);
        }
        // Best candidate swap by potential descent. Deltas are computed
        // incrementally: only gates touching the swapped pair change.
        let mut gates_on: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (gi, i) in layer.iter().enumerate() {
            gates_on[layout.phys(i.q0())].push(gi);
            gates_on[layout.phys(i.q1())].push(gi);
        }
        let mut best: Option<(i64, f64, usize, usize)> = None;
        let mut seen = vec![false; n];
        for &(pa, pb) in &unsat {
            for endpoint in [pa, pb] {
                if seen[endpoint] {
                    continue;
                }
                seen[endpoint] = true;
                for w in topology.graph().neighbors(endpoint) {
                    let reloc = |p: usize| -> usize {
                        if p == endpoint {
                            w
                        } else if p == w {
                            endpoint
                        } else {
                            p
                        }
                    };
                    let mut delta_hops: i64 = 0;
                    let mut delta_weighted = 0.0;
                    let mut counted = [usize::MAX; 8];
                    let mut ncounted = 0;
                    for &gi in gates_on[endpoint].iter().chain(&gates_on[w]) {
                        if counted[..ncounted].contains(&gi) {
                            continue;
                        }
                        if ncounted < counted.len() {
                            counted[ncounted] = gi;
                            ncounted += 1;
                        }
                        let i = layer[gi];
                        let (a0, b0) = (layout.phys(i.q0()), layout.phys(i.q1()));
                        let (a1, b1) = (reloc(a0), reloc(b0));
                        delta_hops +=
                            metric.hop_dist(a1, b1) as i64 - metric.hop_dist(a0, b0) as i64;
                        delta_weighted += metric.dist(a1, b1) - metric.dist(a0, b0);
                    }
                    let candidate = (delta_hops, delta_weighted, endpoint, w);
                    let better = match best {
                        Some((dh, dw, be, bw)) => {
                            delta_hops < dh
                                || (delta_hops == dh
                                    && (delta_weighted < dw - 1e-12
                                        || ((delta_weighted - dw).abs() <= 1e-12
                                            && (endpoint, w) < (be, bw))))
                        }
                        None => true,
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
        }
        match best {
            Some((delta_hops, _, e, w)) if delta_hops < 0 => {
                emit(out, Instruction::two(qcircuit::Gate::Swap, e, w));
                layout.swap_physical(e, w);
                swap_count += 1;
            }
            _ if stalls_left > 0 => {
                stalls_left -= 1;
                // Plateau: walk the farthest unsatisfied gate one step
                // closer along its cheapest path.
                let &(pa, pb) = unsat
                    .iter()
                    .max_by(|x, y| metric.dist(x.0, x.1).total_cmp(&metric.dist(y.0, y.1)))
                    .expect("unsat is non-empty");
                let path = cheapest_path(topology, metric, pa, pb, None).ok_or_else(|| {
                    RouteError::Disconnected {
                        a: pa,
                        b: pb,
                        topology: topology.name().to_owned(),
                    }
                })?;
                emit(
                    out,
                    Instruction::two(qcircuit::Gate::Swap, path[0], path[1]),
                );
                layout.swap_physical(path[0], path[1]);
                swap_count += 1;
            }
            _ => break, // plateau budget exhausted: go serial
        }
    }
    // Serial fallback: emit each gate as soon as it becomes adjacent
    // (abandoning simultaneity for this pathological layer).
    let mut remaining: Vec<&&Instruction> = layer.iter().collect();
    while !remaining.is_empty() {
        remaining.retain(|gate| {
            let pa = layout.phys(gate.q0());
            let pb = layout.phys(gate.q1());
            if topology.are_coupled(pa, pb) {
                emit(out, Instruction::two(gate.gate(), pa, pb));
                false
            } else {
                true
            }
        });
        let Some(gate) = remaining.first().copied() else {
            break;
        };
        let pa = layout.phys(gate.q0());
        let pb = layout.phys(gate.q1());
        let path = cheapest_path(topology, metric, pa, pb, None).ok_or_else(|| {
            RouteError::Disconnected {
                a: pa,
                b: pb,
                topology: topology.name().to_owned(),
            }
        })?;
        swap_count += walk_path(&path, layout, out);
    }
    Ok(swap_count)
}

/// Walks the occupant of `path\[0\]` along `path`, stopping one hop short of
/// `path.last()` (so the pair ends adjacent). Emits the SWAPs and updates
/// the layout; returns the number of SWAPs.
fn walk_path(path: &[usize], layout: &mut Layout, out: &mut Circuit) -> usize {
    let mut current = path[0];
    let mut swaps = 0;
    for &next in &path[1..path.len() - 1] {
        emit(out, Instruction::two(qcircuit::Gate::Swap, current, next));
        layout.swap_physical(current, next);
        current = next;
        swaps += 1;
    }
    swaps
}

/// Dijkstra over the coupling graph with `metric.swap_cost` edge weights
/// (hop count for the unit metric; 3·(−ln success) — the log-infidelity of
/// one SWAP — for the variation-aware metric), optionally excluding frozen
/// qubits (the endpoints are always allowed). Returns the node sequence
/// from `from` to `to`, or `None` if disconnected under the exclusions.
fn cheapest_path(
    topology: &Topology,
    metric: &RoutingMetric,
    from: usize,
    to: usize,
    frozen: Option<&[bool]>,
) -> Option<Vec<usize>> {
    let n = topology.num_qubits();
    let blocked =
        |p: usize| -> bool { p != from && p != to && frozen.map(|f| f[p]).unwrap_or(false) };
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut visited = vec![false; n];
    dist[from] = 0.0;
    for _ in 0..n {
        let u = (0..n)
            .filter(|&u| !visited[u] && dist[u].is_finite())
            .min_by(|&a, &b| dist[a].total_cmp(&dist[b]))?;
        if u == to {
            break;
        }
        visited[u] = true;
        for w in topology.graph().neighbors(u) {
            if visited[w] || blocked(w) {
                continue;
            }
            let cost = dist[u] + metric.swap_cost(u, w);
            if cost < dist[w] - 1e-9 {
                dist[w] = cost;
                prev[w] = u;
            }
        }
    }
    if !dist[to].is_finite() {
        return None;
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[cur];
        if cur == usize::MAX {
            return None;
        }
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

fn emit(out: &mut Circuit, instr: Instruction) {
    out.push(instr).expect("router emits in-range instructions");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{routed_equivalent, satisfies_coupling};
    use qcircuit::Gate;
    use qhw::Calibration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let topo = Topology::linear(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        let r = route(
            &c,
            &topo,
            Layout::trivial(3, 3),
            &RoutingMetric::hops(&topo),
        );
        assert_eq!(r.swap_count, 0);
        assert_eq!(r.circuit.two_qubit_count(), 2);
    }

    #[test]
    fn distant_gate_inserts_minimal_swaps() {
        let topo = Topology::linear(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3); // distance 3 -> 2 swaps
        let r = route(
            &c,
            &topo,
            Layout::trivial(4, 4),
            &RoutingMetric::hops(&topo),
        );
        assert_eq!(r.swap_count, 2);
        assert!(satisfies_coupling(&r.circuit, &topo));
    }

    #[test]
    fn single_qubit_gates_map_through_layout() {
        let topo = Topology::linear(3);
        let mut c = Circuit::new(2);
        c.h(0);
        c.measure(1);
        let layout = Layout::from_mapping(vec![2, 0], 3);
        let r = route(&c, &topo, layout, &RoutingMetric::hops(&topo));
        let instrs = r.circuit.instructions();
        assert_eq!(instrs[0].q0(), 2); // h on physical 2
        assert_eq!(instrs[1].q0(), 0); // measure physical 0
    }

    #[test]
    fn routed_circuit_is_functionally_equivalent() {
        // Random logical circuits must produce routed circuits that
        // compute the same state (up to the final permutation). A 10-qubit
        // ring keeps the verification statevectors small.
        let topo = Topology::ring(10);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let g = qgraph::generators::connected_erdos_renyi(6, 0.5, 100, &mut rng).unwrap();
            let mut c = Circuit::new(6);
            for q in 0..6 {
                c.h(q);
            }
            for e in g.edges() {
                c.rzz(0.37, e.a(), e.b());
            }
            for q in 0..6 {
                c.rx(0.9, q);
            }
            let layout = Layout::random(6, 10, &mut rng);
            let r = route(&c, &topo, layout.clone(), &RoutingMetric::hops(&topo));
            assert!(satisfies_coupling(&r.circuit, &topo));
            assert!(routed_equivalent(&c, &r.circuit, &layout, &r.final_layout));
        }
    }

    #[test]
    fn routing_terminates_on_dense_layers() {
        // A fully-packed layer on a sparse device exercises the
        // walk-and-emit loop heavily; must terminate with a compliant
        // result.
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(5);
        let g = qgraph::generators::connected_erdos_renyi(20, 0.5, 100, &mut rng).unwrap();
        let mut c = Circuit::new(20);
        for e in g.edges() {
            c.rzz(0.2, e.a(), e.b());
        }
        let r = route(
            &c,
            &topo,
            Layout::random(20, 20, &mut rng),
            &RoutingMetric::hops(&topo),
        );
        assert!(satisfies_coupling(&r.circuit, &topo));
        assert_eq!(r.circuit.count_gate("rzz"), g.edge_count());
    }

    #[test]
    fn variation_aware_routing_prefers_reliable_paths() {
        // Square: 0-1, 1-2, 2-3, 3-0. Gate between 0 and 2 (distance 2
        // both ways). Make path through 1 terrible, through 3 great.
        let g = qgraph::Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let topo = Topology::from_graph("square", g);
        let cal = Calibration::from_cnot_errors(
            &topo,
            &[
                ((0, 1), 0.40),
                ((1, 2), 0.40),
                ((2, 3), 0.01),
                ((3, 0), 0.01),
            ],
            1e-3,
            1e-2,
        );
        let mut c = Circuit::new(4);
        c.cx(0, 2);
        let reliable = RoutingMetric::reliability(&topo, &cal);
        let r = route(&c, &topo, Layout::trivial(4, 4), &reliable);
        assert_eq!(r.swap_count, 1);
        // The SWAP must go through qubit 3, not 1.
        let first = r.circuit.instructions()[0];
        assert_eq!(first.gate(), Gate::Swap);
        assert!(
            first.acts_on(3),
            "expected SWAP via reliable qubit 3: {first}"
        );

        // The hop metric breaks the tie toward the lowest-index move.
        let hops = RoutingMetric::hops(&topo);
        let r2 = route(&c, &topo, Layout::trivial(4, 4), &hops);
        assert!(r2.circuit.instructions()[0].acts_on(1));
    }

    #[test]
    fn final_layout_feeds_incremental_compilation() {
        let topo = Topology::linear(4);
        let metric = RoutingMetric::hops(&topo);
        let mut part1 = Circuit::new(4);
        part1.cx(0, 2);
        let r1 = route(&part1, &topo, Layout::trivial(4, 4), &metric);
        // Continue with the updated layout; a gate that is now adjacent
        // must need no SWAPs.
        let l0 = r1.final_layout.phys(0);
        let neighbor_logical = r1
            .final_layout
            .logical_at(if l0 > 0 { l0 - 1 } else { l0 + 1 })
            .unwrap();
        let mut part2 = Circuit::new(4);
        part2
            .push(Instruction::two(Gate::Cnot, 0, neighbor_logical))
            .unwrap();
        let r2 = route(&part2, &topo, r1.final_layout.clone(), &metric);
        assert_eq!(r2.swap_count, 0);
    }

    #[test]
    #[should_panic]
    fn oversized_circuit_panics() {
        let topo = Topology::linear(2);
        let c = Circuit::new(3);
        let _ = route(
            &c,
            &topo,
            Layout::trivial(2, 2),
            &RoutingMetric::hops(&topo),
        );
    }

    #[test]
    fn fig1d_linear_hardware_example() {
        // Figure 1(d): 4 linearly coupled qubits; compiling circ-2 with
        // layer orders 1|2|3 versus 1|3|2 yields 4 vs 3 SWAPs in the paper
        // (using its own backend). Our router's absolute counts differ,
        // but the reordered variant must never be worse.
        let topo = Topology::linear(4);
        let metric = RoutingMetric::hops(&topo);
        let build = |orders: &[(usize, usize)]| {
            let mut c = Circuit::new(4);
            for q in 0..4 {
                c.h(q);
            }
            for &(a, b) in orders {
                c.rzz(0.4, a, b);
            }
            c
        };
        // layer-1: (0,1),(2,3); layer-2: (0,2),(1,3); layer-3: (0,3),(1,2)
        let order_123 = build(&[(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)]);
        let order_132 = build(&[(0, 1), (2, 3), (0, 3), (1, 2), (0, 2), (1, 3)]);
        let r123 = route(&order_123, &topo, Layout::trivial(4, 4), &metric);
        let r132 = route(&order_132, &topo, Layout::trivial(4, 4), &metric);
        // The paper's backend inserts 4 vs 3 SWAPs for these orders; the
        // absolute numbers are backend-specific, but both orders must
        // compile within a small SWAP budget and stay compliant.
        assert!(
            r123.swap_count <= 5,
            "order 1|2|3 used {} swaps",
            r123.swap_count
        );
        assert!(
            r132.swap_count <= 5,
            "order 1|3|2 used {} swaps",
            r132.swap_count
        );
        assert!(satisfies_coupling(&r123.circuit, &topo));
        assert!(satisfies_coupling(&r132.circuit, &topo));
    }
}
