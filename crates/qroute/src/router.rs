use std::cell::RefCell;

use qcircuit::layers::{asap_layers_into, LayerBuffer};
use qcircuit::{Circuit, Instruction};
use qhw::Topology;

use crate::{Layout, RouteError, RoutingMetric};

/// The output of [`route`]: a hardware-compliant physical circuit plus the
/// mapping state after the inserted SWAPs.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// The physical circuit: every two-qubit gate acts on a coupled pair.
    pub circuit: Circuit,
    /// The logical→physical layout after routing — IC/VIC feed this into
    /// the next incremental compilation step (paper §IV-C Step 2).
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
    /// Per-ASAP-layer routing stats, one entry per layer that contained
    /// at least one two-qubit gate, in execution order. The compile
    /// explain report attributes SWAP cost to individual layers with
    /// these.
    pub layer_stats: Vec<RouteLayerStat>,
}

/// Routing stats for one ASAP concurrency layer of two-qubit gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteLayerStat {
    /// The layer's two-qubit gates as `(logical_a, logical_b)` pairs, in
    /// emission order.
    pub gates: Vec<(usize, usize)>,
    /// SWAPs inserted to make this layer executable.
    pub swaps: usize,
}

/// What [`route_append`] reports about the fragment it emitted: the
/// stitched instructions live in the caller's output circuit, so only the
/// mapping state and the fragment's cost figures come back.
#[derive(Debug, Clone)]
pub struct AppendStats {
    /// The logical→physical layout after the fragment's SWAPs.
    pub final_layout: Layout,
    /// Number of SWAP gates inserted for the fragment.
    pub swap_count: usize,
    /// Depth of the emitted fragment, measured as if it were a standalone
    /// circuit (what [`RouteResult::circuit`]`.depth()` would report).
    pub routed_depth: usize,
}

/// Reusable per-thread routing scratch: the ASAP layer partition, the
/// per-layer two-qubit staging buffer, every buffer the layer router and
/// its Dijkstra need, and the telemetry staging vectors. One routing call
/// in steady state allocates nothing — the pre-rewrite router allocated
/// `O(layers · descent-steps)` vectors per call, which dominated the
/// compile hot path's allocator traffic.
#[derive(Default)]
struct RouteScratch {
    layers: LayerBuffer,
    two_qubit: Vec<Instruction>,
    bufs: LayerRouteBufs,
    layer_swaps: Vec<u64>,
    layer_marks: Vec<u64>,
    depth_frontier: Vec<usize>,
}

/// Buffers for one layer-routing descent, reused across layers and calls.
#[derive(Default)]
struct LayerRouteBufs {
    /// Physical qubit → index of the layer gate with an endpoint there
    /// (`usize::MAX` when none). Gates within one ASAP layer act on
    /// pairwise-disjoint qubits and the layout is injective, so each
    /// physical qubit hosts at most one endpoint — the flat array replaces
    /// the old `Vec<Vec<usize>>` gates-on table.
    gate_at: Vec<usize>,
    /// Per-gate current physical endpoints, refreshed each descent step.
    pairs: Vec<(usize, usize)>,
    /// Per-gate current metric distances (hop and weighted), refreshed
    /// with `pairs`: candidate deltas subtract these instead of looking
    /// the unchanged "before" distance up again per candidate.
    cur_hops: Vec<i64>,
    cur_dist: Vec<f64>,
    unsat: Vec<(usize, usize)>,
    dist: Vec<f64>,
    prev: Vec<usize>,
    visited: Vec<bool>,
    path: Vec<usize>,
    serial: Vec<Instruction>,
}

thread_local! {
    static SCRATCH: RefCell<RouteScratch> = RefCell::new(RouteScratch::default());
}

/// Routes a logical circuit onto `topology`, inserting SWAPs so every
/// two-qubit gate meets the coupling constraint.
///
/// The algorithm follows the layer-by-layer scheme of the paper's backend
/// references (\[47\], \[48\]): the circuit is partitioned into ASAP
/// concurrency layers, and each layer is routed as a unit — already
/// adjacent gates are emitted immediately, then the closest unsatisfied
/// gate is walked to adjacency one coupling edge at a time, with each step
/// chosen to also minimize the remaining gates' total distance (the
/// "considering many operations at the same time" rationale of §III).
/// SWAPs on disjoint qubits parallelize in the emitted stream via ASAP
/// scheduling. Single-qubit gates and measurements are emitted on their
/// mapped physical qubit directly.
///
/// Deterministic: all ties break toward the lowest qubit index.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the topology provides, the
/// layout is smaller than the circuit, or the coupling graph leaves some
/// required pair disconnected. Use [`try_route`] to receive these as
/// [`RouteError`] values instead.
pub fn route(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
) -> RouteResult {
    match try_route(circuit, topology, initial_layout, metric) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// [`route`] returning structural failures as [`RouteError`] values
/// instead of panicking — the form the `qcompile` pipeline and batch
/// drivers consume.
///
/// # Errors
///
/// Returns [`RouteError::CircuitTooLarge`], [`RouteError::LayoutTooSmall`]
/// or [`RouteError::LayoutMismatch`] when the inputs disagree on qubit
/// counts, and [`RouteError::Disconnected`] when the coupling graph leaves
/// a required pair unreachable.
pub fn try_route(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
) -> Result<RouteResult, RouteError> {
    let mut out = Circuit::new(topology.num_qubits());
    // Routing only permutes qubits; symbolic angles (and the table that
    // names them) pass through untouched.
    out.set_param_table(circuit.param_table().clone());
    let mut layer_stats: Vec<RouteLayerStat> = Vec::new();
    let (final_layout, swap_count, _) = route_core(
        circuit,
        topology,
        initial_layout,
        metric,
        &mut out,
        Some(&mut layer_stats),
    )?;
    Ok(RouteResult {
        circuit: out,
        final_layout,
        swap_count,
        layer_stats,
    })
}

/// [`try_route`], emitting the routed fragment **directly into `out`**
/// instead of materializing an intermediate circuit — the incremental
/// compiler's per-layer stitch path, which previously paid a fresh
/// circuit allocation plus an `append` copy per formed CPHASE layer.
///
/// The emitted instruction stream is exactly what [`try_route`] would
/// have produced (and what `out.append` of that result would have
/// stitched); per-layer [`RouteLayerStat`]s are skipped, which is what
/// makes the call allocation-free in steady state. `out` must have
/// `topology.num_qubits()` qubits; the caller's parameter table is left
/// untouched (routing never introduces parameters).
///
/// # Errors
///
/// Same conditions as [`try_route`]. On error, instructions already
/// emitted for earlier layers of the fragment remain in `out` — callers
/// that continue after an error must truncate to their own checkpoint
/// (the compile pipeline treats every [`RouteError`] as fatal for the
/// attempt, so it never observes the partial fragment).
pub fn route_append(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
    out: &mut Circuit,
) -> Result<AppendStats, RouteError> {
    debug_assert_eq!(out.num_qubits(), topology.num_qubits());
    let (final_layout, swap_count, routed_depth) =
        route_core(circuit, topology, initial_layout, metric, out, None)?;
    Ok(AppendStats {
        final_layout,
        swap_count,
        routed_depth,
    })
}

/// The shared routing engine behind [`try_route`] and [`route_append`]:
/// validates, partitions into ASAP layers, routes layer by layer into
/// `out` and flushes telemetry in one batch. Per-layer gate lists are
/// recorded only when `stats` is supplied.
fn route_core(
    circuit: &Circuit,
    topology: &Topology,
    initial_layout: Layout,
    metric: &RoutingMetric,
    out: &mut Circuit,
    mut stats: Option<&mut Vec<RouteLayerStat>>,
) -> Result<(Layout, usize, usize), RouteError> {
    if circuit.num_qubits() > topology.num_qubits() {
        return Err(RouteError::CircuitTooLarge {
            needed: circuit.num_qubits(),
            available: topology.num_qubits(),
            topology: topology.name().to_owned(),
        });
    }
    if initial_layout.num_logical() < circuit.num_qubits() {
        return Err(RouteError::LayoutTooSmall {
            covers: initial_layout.num_logical(),
            needed: circuit.num_qubits(),
        });
    }
    if initial_layout.num_physical() != topology.num_qubits() {
        return Err(RouteError::LayoutMismatch {
            layout_physical: initial_layout.num_physical(),
            topology_physical: topology.num_qubits(),
        });
    }

    let start = out.len();
    // Every input gate is emitted exactly once; SWAPs come on top, so the
    // reserve is a floor, not an exact fit.
    out.reserve(circuit.len());
    let mut layout = initial_layout;
    let mut swap_count = 0usize;

    let q = qtrace::global();
    // Nothing reads this span's elapsed time when the recorder is off, so
    // skip even its two clock reads — route_core runs once per formed
    // CPHASE layer, and disabled-path cost is compile throughput.
    let span = q.is_enabled().then(|| q.span("qroute/route"));
    let routed_depth = SCRATCH.with(|cell| -> Result<usize, RouteError> {
        let mut scratch = cell.borrow_mut();
        let RouteScratch {
            layers,
            two_qubit,
            bufs,
            layer_swaps,
            layer_marks,
            depth_frontier,
        } = &mut *scratch;
        layer_swaps.clear();
        layer_marks.clear();
        asap_layers_into(circuit, 0, layers);
        for layer in layers.built() {
            // Single-qubit work never constrains routing: emit it first.
            two_qubit.clear();
            for instr in layer {
                if instr.gate().arity() == 1 {
                    emit(out, instr.remap(|l| layout.phys(l)));
                } else {
                    two_qubit.push(*instr);
                }
            }
            let swaps = route_layer(two_qubit, topology, metric, &mut layout, out, bufs)?;
            if !two_qubit.is_empty() {
                // One timeline marker per routed layer lets a trace show
                // where inside a route call the SWAP cost accrued. Only the
                // timestamp is captured here; the events flush in one batch
                // below so the loop stays off the recorder lock.
                if q.events_enabled() {
                    layer_marks.push(qtrace::event::now_ns());
                }
                layer_swaps.push(swaps as u64);
                if let Some(stats) = stats.as_deref_mut() {
                    stats.push(RouteLayerStat {
                        gates: two_qubit.iter().map(|i| (i.q0(), i.q1())).collect(),
                        swaps,
                    });
                }
            }
            swap_count += swaps;
        }
        let routed_depth = out.depth_from_with(start, depth_frontier);
        if q.is_enabled() {
            // Per-layer numbers flush in one batch — taking the recorder
            // lock inside the layer loop shows up in the tracing-overhead
            // budget.
            q.add("qroute/layers", layer_swaps.len() as u64);
            q.observe_many("qroute/layer_swaps", layer_swaps);
            q.add("qroute/swaps", swap_count as u64);
            q.gauge_max("qroute/routed_depth", routed_depth as u64);
            q.instants_at("qroute/layer", layer_marks);
        }
        Ok(routed_depth)
    })?;
    if let Some(span) = span {
        span.finish();
    }

    Ok((layout, swap_count, routed_depth))
}

/// Routes one layer of two-qubit gates (disjoint qubits), emitting both
/// the SWAPs and the gates themselves. Returns the number of SWAPs
/// inserted.
///
/// Matches the backend semantics the paper builds on (\[47\], \[48\]): the
/// SWAPs synthesized before a layer bring **all** of the layer's gates
/// adjacent simultaneously, so the layer executes as one parallel block
/// ("SWAP gates are added between two layers to meet the hardware
/// constraints"). This makes the number of gate layers the dominant depth
/// factor - the property IP and IC exploit.
///
/// Strategy: greedy descent on the potential "total distance over all of
/// the layer's gates". Each step applies the candidate SWAP (an edge
/// touching an unsatisfied gate's endpoint) with the most negative
/// potential delta; on a plateau the farthest unsatisfied gate moves one
/// step closer instead (strictly decreasing its own distance). Plateau
/// moves are budgeted; if the budget runs out the layer finishes with a
/// serial emit-on-adjacency walk, which terminates unconditionally.
fn route_layer(
    layer: &[Instruction],
    topology: &Topology,
    metric: &RoutingMetric,
    layout: &mut Layout,
    out: &mut Circuit,
    bufs: &mut LayerRouteBufs,
) -> Result<usize, RouteError> {
    let mut swap_count = 0usize;
    if layer.is_empty() {
        return Ok(0);
    }
    let n = topology.num_qubits();
    // Hoisted dense distance tables: the candidate loop below is lookup
    // bound, and a flat slice read per lookup is what keeps it so.
    let hops_flat = metric.hops_flat();
    let dist_flat = metric.dist_flat();
    debug_assert_eq!(metric.num_physical(), n);
    // Plateau moves are forced swaps that the next improving step can
    // undo; a small budget keeps descent from thrashing on sparse devices
    // where simultaneous adjacency of a dense layer is very expensive —
    // past it, the serial emit-on-adjacency fallback is cheaper.
    let mut stalls_left = 4;
    // First pass: current operand homes plus the initially unsatisfied
    // gates, both in layer order. Layers that are already simultaneously
    // adjacent — common late in IC's distance-ordered packing — emit
    // without touching the rest of the descent state.
    bufs.pairs.clear();
    bufs.unsat.clear();
    for i in layer.iter() {
        let (pa, pb) = (layout.phys(i.q0()), layout.phys(i.q1()));
        bufs.pairs.push((pa, pb));
        if !topology.are_coupled(pa, pb) {
            bufs.unsat.push((pa, pb));
        }
    }
    if bufs.unsat.is_empty() {
        for (gate, &(pa, pb)) in layer.iter().zip(bufs.pairs.iter()) {
            emit(out, Instruction::two(gate.gate(), pa, pb));
        }
        return Ok(0);
    }
    // Per-gate descent state, maintained incrementally: a swap moves
    // exactly two physical qubits, so only the (at most two) gates with
    // an operand on them change — the disjointness invariant means at
    // most one gate per endpoint. `pairs`/`cur_hops`/`cur_dist` hold each
    // gate's current operand homes and their table distances (the same
    // table reads a full per-step rebuild would perform, so the values —
    // including the VIC floats — are bit-identical to recomputing).
    bufs.gate_at.clear();
    bufs.gate_at.resize(n, usize::MAX);
    bufs.cur_hops.clear();
    bufs.cur_dist.clear();
    for gi in 0..bufs.pairs.len() {
        let (pa, pb) = bufs.pairs[gi];
        bufs.gate_at[pa] = gi;
        bufs.gate_at[pb] = gi;
        bufs.cur_hops.push(hops_flat[pa * n + pb] as i64);
        bufs.cur_dist.push(dist_flat[pa * n + pb]);
    }
    // The descent potential is measured in hops: each improving swap
    // decreases the summed hop distance by at least 1, so the descent
    // terminates within the initial total hop distance. Weighted distances
    // only break ties, steering equal-hop choices toward reliable
    // couplings for the variation-aware metric.
    loop {
        // For the unit metric, `dist` IS the hop count as `f64`: every
        // weighted delta is an exact small integer, so the reference
        // comparison (`dw' < dw - 1e-12`, `|dw' - dw| <= 1e-12`) is
        // *exactly* the integer comparison on `delta_hops` — the epsilons
        // can never flip an outcome when all differences are 0 or >= 1.
        // The specialized loop below therefore takes identical decisions
        // while skipping the float accumulation entirely (half the table
        // lookups of the general form); the variation-aware branch keeps
        // the float sums, in the reference's accumulation order, so VIC
        // tie-breaks replay bit-for-bit.
        let unit_metric = !metric.is_variation_aware();
        let mut best: Option<(i64, f64, usize, usize)> = None;
        for &(pa, pb) in &bufs.unsat {
            for endpoint in [pa, pb] {
                for &w in topology.neighbors(endpoint) {
                    let mut delta_hops: i64 = 0;
                    let mut delta_weighted = 0.0;
                    // Accumulation order matches the old gates-on chain
                    // (endpoint's gate, then w's distinct gate), and each
                    // branch indexes the exact matrix cell the reference's
                    // operand-relocation form reads, so the float sums —
                    // and therefore VIC tie-breaks — are bit-identical.
                    // The "before" distances are the maintained per-gate
                    // values: the same table reads the reference performs,
                    // just not repeated per candidate.
                    let g0 = bufs.gate_at[endpoint];
                    let g1 = bufs.gate_at[w];
                    if g0 != usize::MAX {
                        let (a0, b0) = bufs.pairs[g0];
                        // A gate on (endpoint, w) itself keeps its distance
                        // under the swap (the matrix is symmetric), adding
                        // exactly zero — skip it.
                        let cell = if a0 == endpoint {
                            if b0 == w {
                                usize::MAX
                            } else {
                                w * n + b0
                            }
                        } else if a0 == w {
                            usize::MAX
                        } else {
                            a0 * n + w
                        };
                        if cell != usize::MAX {
                            delta_hops += hops_flat[cell] as i64 - bufs.cur_hops[g0];
                            if !unit_metric {
                                delta_weighted += dist_flat[cell] - bufs.cur_dist[g0];
                            }
                        }
                    }
                    if g1 != usize::MAX && g1 != g0 {
                        // `w`'s gate: its other operand is neither endpoint
                        // nor `w` (distinct disjoint gates), so only the
                        // `w` operand relocates.
                        let (a1, b1) = bufs.pairs[g1];
                        let cell = if a1 == w {
                            endpoint * n + b1
                        } else {
                            a1 * n + endpoint
                        };
                        delta_hops += hops_flat[cell] as i64 - bufs.cur_hops[g1];
                        if !unit_metric {
                            delta_weighted += dist_flat[cell] - bufs.cur_dist[g1];
                        }
                    }
                    let better = match best {
                        Some((dh, dw, be, bw)) => {
                            if unit_metric {
                                (delta_hops, endpoint, w) < (dh, be, bw)
                            } else {
                                delta_hops < dh
                                    || (delta_hops == dh
                                        && (delta_weighted < dw - 1e-12
                                            || ((delta_weighted - dw).abs() <= 1e-12
                                                && (endpoint, w) < (be, bw))))
                            }
                        }
                        None => true,
                    };
                    if better {
                        best = Some((delta_hops, delta_weighted, endpoint, w));
                    }
                }
            }
        }
        match best {
            Some((delta_hops, _, e, w)) if delta_hops < 0 => {
                emit(out, Instruction::two(qcircuit::Gate::Swap, e, w));
                layout.swap_physical(e, w);
                apply_swap_to_gates(bufs, hops_flat, dist_flat, n, e, w);
                swap_count += 1;
            }
            _ if stalls_left > 0 => {
                stalls_left -= 1;
                // Plateau: walk the farthest unsatisfied gate one step
                // closer along its cheapest path.
                let (pa, pb) = *bufs
                    .unsat
                    .iter()
                    .max_by(|x, y| dist_flat[x.0 * n + x.1].total_cmp(&dist_flat[y.0 * n + y.1]))
                    .expect("unsat is non-empty");
                if !cheapest_path_into(topology, metric, pa, pb, None, bufs) {
                    return Err(RouteError::Disconnected {
                        a: pa,
                        b: pb,
                        topology: topology.name().to_owned(),
                    });
                }
                emit(
                    out,
                    Instruction::two(qcircuit::Gate::Swap, bufs.path[0], bufs.path[1]),
                );
                let (e, w) = (bufs.path[0], bufs.path[1]);
                layout.swap_physical(e, w);
                apply_swap_to_gates(bufs, hops_flat, dist_flat, n, e, w);
                swap_count += 1;
            }
            _ => break, // plateau budget exhausted: go serial
        }
        // Reflect the swap in the unsatisfied list; `pairs` is in layer
        // order, so this reproduces the gate order a scan over `layer` +
        // `layout` would yield.
        bufs.unsat.clear();
        bufs.unsat.extend(
            bufs.pairs
                .iter()
                .copied()
                .filter(|&(pa, pb)| !topology.are_coupled(pa, pb)),
        );
        if bufs.unsat.is_empty() {
            // Simultaneously adjacent: emit the parallel block.
            for (gate, &(pa, pb)) in layer.iter().zip(bufs.pairs.iter()) {
                emit(out, Instruction::two(gate.gate(), pa, pb));
            }
            return Ok(swap_count);
        }
    }
    // Serial fallback: emit each gate as soon as it becomes adjacent
    // (abandoning simultaneity for this pathological layer).
    bufs.serial.clear();
    bufs.serial.extend_from_slice(layer);
    while !bufs.serial.is_empty() {
        bufs.serial.retain(|gate| {
            let pa = layout.phys(gate.q0());
            let pb = layout.phys(gate.q1());
            if topology.are_coupled(pa, pb) {
                emit(out, Instruction::two(gate.gate(), pa, pb));
                false
            } else {
                true
            }
        });
        let Some(&gate) = bufs.serial.first() else {
            break;
        };
        let pa = layout.phys(gate.q0());
        let pb = layout.phys(gate.q1());
        if !cheapest_path_into(topology, metric, pa, pb, None, bufs) {
            return Err(RouteError::Disconnected {
                a: pa,
                b: pb,
                topology: topology.name().to_owned(),
            });
        }
        swap_count += walk_path(&bufs.path, layout, out);
    }
    Ok(swap_count)
}

/// Applies the physical swap `(e, w)` to [`route_layer`]'s per-gate
/// descent state: rewrites the operand pairs of the (at most two) gates
/// touching `e` or `w`, refreshes their cached distances with the same
/// table reads a full per-step rebuild would perform, and swaps the
/// occupancy entries. Every other gate's state is untouched — a swap
/// moves exactly two physical qubits.
fn apply_swap_to_gates(
    bufs: &mut LayerRouteBufs,
    hops_flat: &[usize],
    dist_flat: &[f64],
    n: usize,
    e: usize,
    w: usize,
) {
    let g0 = bufs.gate_at[e];
    let g1 = bufs.gate_at[w];
    let mut update = |gi: usize| {
        let (a0, b0) = bufs.pairs[gi];
        let reloc = |p: usize| {
            if p == e {
                w
            } else if p == w {
                e
            } else {
                p
            }
        };
        let (a1, b1) = (reloc(a0), reloc(b0));
        bufs.pairs[gi] = (a1, b1);
        bufs.cur_hops[gi] = hops_flat[a1 * n + b1] as i64;
        bufs.cur_dist[gi] = dist_flat[a1 * n + b1];
    };
    if g0 != usize::MAX {
        update(g0);
    }
    if g1 != usize::MAX && g1 != g0 {
        update(g1);
    }
    bufs.gate_at.swap(e, w);
}

/// Walks the occupant of `path\[0\]` along `path`, stopping one hop short of
/// `path.last()` (so the pair ends adjacent). Emits the SWAPs and updates
/// the layout; returns the number of SWAPs.
fn walk_path(path: &[usize], layout: &mut Layout, out: &mut Circuit) -> usize {
    let mut current = path[0];
    let mut swaps = 0;
    for &next in &path[1..path.len() - 1] {
        emit(out, Instruction::two(qcircuit::Gate::Swap, current, next));
        layout.swap_physical(current, next);
        current = next;
        swaps += 1;
    }
    swaps
}

/// Dijkstra over the coupling graph with `metric.swap_cost` edge weights
/// (hop count for the unit metric; 3·(−ln success) — the log-infidelity of
/// one SWAP — for the variation-aware metric), optionally excluding frozen
/// qubits (the endpoints are always allowed). On success, leaves the node
/// sequence from `from` to `to` in `bufs.path` and returns `true`; returns
/// `false` if disconnected under the exclusions. All working storage
/// (distance, predecessor and visited tables plus the path itself) lives
/// in `bufs`, so repeated calls allocate nothing.
fn cheapest_path_into(
    topology: &Topology,
    metric: &RoutingMetric,
    from: usize,
    to: usize,
    frozen: Option<&[bool]>,
    bufs: &mut LayerRouteBufs,
) -> bool {
    let n = topology.num_qubits();
    let blocked =
        |p: usize| -> bool { p != from && p != to && frozen.map(|f| f[p]).unwrap_or(false) };
    bufs.dist.clear();
    bufs.dist.resize(n, f64::INFINITY);
    bufs.prev.clear();
    bufs.prev.resize(n, usize::MAX);
    bufs.visited.clear();
    bufs.visited.resize(n, false);
    bufs.dist[from] = 0.0;
    for _ in 0..n {
        let Some(u) = (0..n)
            .filter(|&u| !bufs.visited[u] && bufs.dist[u].is_finite())
            .min_by(|&a, &b| bufs.dist[a].total_cmp(&bufs.dist[b]))
        else {
            return false;
        };
        if u == to {
            break;
        }
        bufs.visited[u] = true;
        for &w in topology.neighbors(u) {
            if bufs.visited[w] || blocked(w) {
                continue;
            }
            let cost = bufs.dist[u] + metric.swap_cost(u, w);
            if cost < bufs.dist[w] - 1e-9 {
                bufs.dist[w] = cost;
                bufs.prev[w] = u;
            }
        }
    }
    if !bufs.dist[to].is_finite() {
        return false;
    }
    bufs.path.clear();
    bufs.path.push(to);
    let mut cur = to;
    while cur != from {
        cur = bufs.prev[cur];
        if cur == usize::MAX {
            return false;
        }
        bufs.path.push(cur);
    }
    bufs.path.reverse();
    true
}

fn emit(out: &mut Circuit, instr: Instruction) {
    out.push(instr).expect("router emits in-range instructions");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{routed_equivalent, satisfies_coupling};
    use qcircuit::Gate;
    use qhw::Calibration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let topo = Topology::linear(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        let r = route(
            &c,
            &topo,
            Layout::trivial(3, 3),
            &RoutingMetric::hops(&topo),
        );
        assert_eq!(r.swap_count, 0);
        assert_eq!(r.circuit.two_qubit_count(), 2);
    }

    #[test]
    fn distant_gate_inserts_minimal_swaps() {
        let topo = Topology::linear(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3); // distance 3 -> 2 swaps
        let r = route(
            &c,
            &topo,
            Layout::trivial(4, 4),
            &RoutingMetric::hops(&topo),
        );
        assert_eq!(r.swap_count, 2);
        assert!(satisfies_coupling(&r.circuit, &topo));
    }

    #[test]
    fn single_qubit_gates_map_through_layout() {
        let topo = Topology::linear(3);
        let mut c = Circuit::new(2);
        c.h(0);
        c.measure(1);
        let layout = Layout::from_mapping(vec![2, 0], 3);
        let r = route(&c, &topo, layout, &RoutingMetric::hops(&topo));
        let instrs = r.circuit.instructions();
        assert_eq!(instrs[0].q0(), 2); // h on physical 2
        assert_eq!(instrs[1].q0(), 0); // measure physical 0
    }

    #[test]
    fn routed_circuit_is_functionally_equivalent() {
        // Random logical circuits must produce routed circuits that
        // compute the same state (up to the final permutation). A 10-qubit
        // ring keeps the verification statevectors small.
        let topo = Topology::ring(10);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let g = qgraph::generators::connected_erdos_renyi(6, 0.5, 100, &mut rng).unwrap();
            let mut c = Circuit::new(6);
            for q in 0..6 {
                c.h(q);
            }
            for e in g.edges() {
                c.rzz(0.37, e.a(), e.b());
            }
            for q in 0..6 {
                c.rx(0.9, q);
            }
            let layout = Layout::random(6, 10, &mut rng);
            let r = route(&c, &topo, layout.clone(), &RoutingMetric::hops(&topo));
            assert!(satisfies_coupling(&r.circuit, &topo));
            assert!(routed_equivalent(&c, &r.circuit, &layout, &r.final_layout));
        }
    }

    #[test]
    fn routing_terminates_on_dense_layers() {
        // A fully-packed layer on a sparse device exercises the
        // walk-and-emit loop heavily; must terminate with a compliant
        // result.
        let topo = Topology::ibmq_20_tokyo();
        let mut rng = StdRng::seed_from_u64(5);
        let g = qgraph::generators::connected_erdos_renyi(20, 0.5, 100, &mut rng).unwrap();
        let mut c = Circuit::new(20);
        for e in g.edges() {
            c.rzz(0.2, e.a(), e.b());
        }
        let r = route(
            &c,
            &topo,
            Layout::random(20, 20, &mut rng),
            &RoutingMetric::hops(&topo),
        );
        assert!(satisfies_coupling(&r.circuit, &topo));
        assert_eq!(r.circuit.count_gate("rzz"), g.edge_count());
    }

    #[test]
    fn variation_aware_routing_prefers_reliable_paths() {
        // Square: 0-1, 1-2, 2-3, 3-0. Gate between 0 and 2 (distance 2
        // both ways). Make path through 1 terrible, through 3 great.
        let g = qgraph::Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let topo = Topology::from_graph("square", g);
        let cal = Calibration::from_cnot_errors(
            &topo,
            &[
                ((0, 1), 0.40),
                ((1, 2), 0.40),
                ((2, 3), 0.01),
                ((3, 0), 0.01),
            ],
            1e-3,
            1e-2,
        );
        let mut c = Circuit::new(4);
        c.cx(0, 2);
        let reliable = RoutingMetric::reliability(&topo, &cal);
        let r = route(&c, &topo, Layout::trivial(4, 4), &reliable);
        assert_eq!(r.swap_count, 1);
        // The SWAP must go through qubit 3, not 1.
        let first = r.circuit.instructions()[0];
        assert_eq!(first.gate(), Gate::Swap);
        assert!(
            first.acts_on(3),
            "expected SWAP via reliable qubit 3: {first}"
        );

        // The hop metric breaks the tie toward the lowest-index move.
        let hops = RoutingMetric::hops(&topo);
        let r2 = route(&c, &topo, Layout::trivial(4, 4), &hops);
        assert!(r2.circuit.instructions()[0].acts_on(1));
    }

    #[test]
    fn final_layout_feeds_incremental_compilation() {
        let topo = Topology::linear(4);
        let metric = RoutingMetric::hops(&topo);
        let mut part1 = Circuit::new(4);
        part1.cx(0, 2);
        let r1 = route(&part1, &topo, Layout::trivial(4, 4), &metric);
        // Continue with the updated layout; a gate that is now adjacent
        // must need no SWAPs.
        let l0 = r1.final_layout.phys(0);
        let neighbor_logical = r1
            .final_layout
            .logical_at(if l0 > 0 { l0 - 1 } else { l0 + 1 })
            .unwrap();
        let mut part2 = Circuit::new(4);
        part2
            .push(Instruction::two(Gate::Cnot, 0, neighbor_logical))
            .unwrap();
        let r2 = route(&part2, &topo, r1.final_layout.clone(), &metric);
        assert_eq!(r2.swap_count, 0);
    }

    #[test]
    fn route_append_matches_try_route_stitching() {
        // The direct-emission path must produce the byte stream that
        // try_route + append would have: same instructions, same layout,
        // same counts, same fragment depth.
        let topo = Topology::ibmq_20_tokyo();
        let metric = RoutingMetric::hops(&topo);
        let mut rng = StdRng::seed_from_u64(11);
        let mut layout = Layout::random(12, 20, &mut rng);
        let mut stitched = Circuit::new(20);
        let mut direct = Circuit::new(20);
        for round in 0..4 {
            let g = qgraph::generators::connected_erdos_renyi(12, 0.4, 100, &mut rng).unwrap();
            let mut frag = Circuit::new(12);
            for e in g.edges() {
                frag.rzz(0.1 + round as f64, e.a(), e.b());
            }
            let r = try_route(&frag, &topo, layout.clone(), &metric).unwrap();
            stitched.append(&r.circuit).unwrap();
            let a = route_append(&frag, &topo, layout.clone(), &metric, &mut direct).unwrap();
            assert_eq!(a.final_layout, r.final_layout);
            assert_eq!(a.swap_count, r.swap_count);
            assert_eq!(a.routed_depth, r.circuit.depth());
            layout = a.final_layout;
        }
        assert_eq!(stitched.instructions(), direct.instructions());
    }

    #[test]
    #[should_panic]
    fn oversized_circuit_panics() {
        let topo = Topology::linear(2);
        let c = Circuit::new(3);
        let _ = route(
            &c,
            &topo,
            Layout::trivial(2, 2),
            &RoutingMetric::hops(&topo),
        );
    }

    #[test]
    fn fig1d_linear_hardware_example() {
        // Figure 1(d): 4 linearly coupled qubits; compiling circ-2 with
        // layer orders 1|2|3 versus 1|3|2 yields 4 vs 3 SWAPs in the paper
        // (using its own backend). Our router's absolute counts differ,
        // but the reordered variant must never be worse.
        let topo = Topology::linear(4);
        let metric = RoutingMetric::hops(&topo);
        let build = |orders: &[(usize, usize)]| {
            let mut c = Circuit::new(4);
            for q in 0..4 {
                c.h(q);
            }
            for &(a, b) in orders {
                c.rzz(0.4, a, b);
            }
            c
        };
        // layer-1: (0,1),(2,3); layer-2: (0,2),(1,3); layer-3: (0,3),(1,2)
        let order_123 = build(&[(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)]);
        let order_132 = build(&[(0, 1), (2, 3), (0, 3), (1, 2), (0, 2), (1, 3)]);
        let r123 = route(&order_123, &topo, Layout::trivial(4, 4), &metric);
        let r132 = route(&order_132, &topo, Layout::trivial(4, 4), &metric);
        // The paper's backend inserts 4 vs 3 SWAPs for these orders; the
        // absolute numbers are backend-specific, but both orders must
        // compile within a small SWAP budget and stay compliant.
        assert!(
            r123.swap_count <= 5,
            "order 1|2|3 used {} swaps",
            r123.swap_count
        );
        assert!(
            r132.swap_count <= 5,
            "order 1|3|2 used {} swaps",
            r132.swap_count
        );
        assert!(satisfies_coupling(&r123.circuit, &topo));
        assert!(satisfies_coupling(&r132.circuit, &topo));
    }
}
