//! Event timelines: bounded, lock-cheap rings of span begin/end and
//! instant events.
//!
//! Aggregate span statistics (see [`crate::SpanStat`]) answer "how much
//! time did path X take in total" but cannot localize a regression below
//! a path boundary: *which* routing layer blew up, *when* the fallback
//! ladder stepped down, how compile and simulation phases interleave
//! across batch workers. Event capture answers those questions by
//! recording a timestamped [`Event`] for every span begin/end and for
//! explicit instants, tagged with a small per-thread ordinal.
//!
//! # Design
//!
//! * **Sharded rings.** Events are pushed into one of
//!   [`EVENT_SHARDS`] rings selected by the calling thread's ordinal, so
//!   two threads almost never contend on the same lock (a lock is still
//!   taken — uncontended `Mutex` acquisition is a few nanoseconds — which
//!   keeps the implementation safe-code-only).
//! * **Bounded.** Each ring stops accepting events at the configured
//!   capacity and counts what it dropped; a runaway workload degrades the
//!   trace, never the process. Drops surface as the
//!   `qtrace/dropped_events` counter in the drained manifest.
//! * **Opt-in twice.** Event capture is off unless the recorder is
//!   enabled *and* [`crate::Recorder::capture_events`] was turned on —
//!   aggregate-only users (the `--manifest` flag) pay one extra relaxed
//!   atomic load and nothing else.
//!
//! Timestamps are nanoseconds of monotonic time since a process-global
//! epoch (first use), so events from different threads order correctly.
//! [`crate::Manifest::normalized`] rebases them to zero and sorts events
//! deterministically, keeping manifest-determinism comparisons exact.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Number of event rings a [`crate::Recorder`] shards threads across.
pub const EVENT_SHARDS: usize = 16;

/// Default per-shard event capacity (events beyond it are dropped and
/// counted).
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// What kind of timeline event was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A span started (Chrome Trace Format phase `B`).
    Begin,
    /// A span finished (phase `E`).
    End,
    /// A point-in-time marker (phase `i`).
    Instant,
}

impl EventKind {
    /// The Chrome Trace Format phase letter, also used in the manifest
    /// serialization.
    pub fn code(self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        }
    }

    /// Parses a phase letter back into a kind.
    pub fn from_code(code: &str) -> Option<EventKind> {
        match code {
            "B" => Some(EventKind::Begin),
            "E" => Some(EventKind::End),
            "i" => Some(EventKind::Instant),
            _ => None,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One timeline event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span path (for begin/end) or marker name (for instants). Shared
    /// (`Arc<str>`) so a span's begin and end events clone a refcount
    /// instead of re-allocating the path on the hot path.
    pub path: Arc<str>,
    /// Event kind.
    pub kind: EventKind,
    /// Small per-thread ordinal (assigned on a thread's first event;
    /// stable for the thread's lifetime, not across runs).
    pub tid: u64,
    /// Nanoseconds of monotonic time since the process trace epoch.
    pub ts_ns: u64,
}

/// One bounded shard of the event ring.
#[derive(Debug)]
pub(crate) struct EventRing {
    events: Vec<Event>,
    dropped: u64,
}

impl EventRing {
    pub(crate) const fn new() -> EventRing {
        EventRing {
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Pushes an event, dropping (and counting) beyond `capacity`.
    pub(crate) fn push(&mut self, event: Event, capacity: usize) {
        if self.events.len() < capacity {
            self.events.push(event);
        } else {
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Drains the shard, returning `(events, dropped)` and resetting both.
    pub(crate) fn drain(&mut self) -> (Vec<Event>, u64) {
        let dropped = std::mem::take(&mut self.dropped);
        (std::mem::take(&mut self.events), dropped)
    }
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (established on first use).
pub fn now_ns() -> u64 {
    ns_since(Instant::now())
}

/// Nanoseconds between the process trace epoch and a previously captured
/// `Instant`. Lets callers that already hold an `Instant` (a span's start
/// time) stamp an event without a second clock read.
pub fn ns_since(at: Instant) -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(at.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// This thread's small stable ordinal (first-event assignment order).
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|id| *id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for kind in [EventKind::Begin, EventKind::End, EventKind::Instant] {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
            assert_eq!(kind.to_string(), kind.code());
        }
        assert_eq!(EventKind::from_code("X"), None);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut ring = EventRing::new();
        let ev = |i: u64| Event {
            path: "p".into(),
            kind: EventKind::Instant,
            tid: 0,
            ts_ns: i,
        };
        for i in 0..5 {
            ring.push(ev(i), 3);
        }
        let (events, dropped) = ring.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(dropped, 2);
        // Draining resets the ring.
        let (events, dropped) = ring.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn clock_is_monotonic_and_ordinal_is_stable() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        assert_eq!(thread_ordinal(), thread_ordinal());
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(other, thread_ordinal());
    }
}
