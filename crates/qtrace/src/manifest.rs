//! The run manifest: a canonical, deterministically ordered JSON
//! snapshot of everything a [`Recorder`](crate::Recorder) observed.
//!
//! # Schema (`qtrace_version` 2)
//!
//! ```json
//! {
//!   "qtrace_version": 2,
//!   "name": "fig07_qaim",
//!   "created_unix_ms": 1754468000000,
//!   "spans": [
//!     {"path": "qcompile/compile", "count": 400,
//!      "total_ns": 81234567, "min_ns": 90123, "max_ns": 412345,
//!      "p50_ns": 180000, "p90_ns": 310000, "p99_ns": 405000}
//!   ],
//!   "counters": [{"name": "qroute/swaps", "value": 1234}],
//!   "gauges": [{"name": "qsim/peak_live_amplitudes", "max": 1048576}],
//!   "histograms": [
//!     {"name": "qsim/fused_diag_run_len", "count": 10, "sum": 55,
//!      "buckets": [[0, 3], [2, 4], [4, 3]]}
//!   ],
//!   "events": [
//!     {"path": "qcompile/compile", "ph": "B", "tid": 0, "ts_ns": 120}
//!   ]
//! }
//! ```
//!
//! Version 2 added the span quantile fields (`p50_ns`/`p90_ns`/`p99_ns`)
//! and the optional `events` section (timeline events, omitted when no
//! events were captured); [`Manifest::from_json`] still reads version-1
//! documents, defaulting both to empty/zero.
//!
//! Every aggregate section is sorted by key and always present, so two
//! manifests from identical runs differ only in the wall-time fields
//! (`created_unix_ms`, the span timing fields, event timestamps/thread
//! ids, and the contents of `_ns`-suffixed histograms) —
//! [`Manifest::normalized`] zeroes exactly those (re-sorting events by
//! path once timestamps are gone, and keeping the `_ns` histograms'
//! deterministic sample counts), giving a byte-exact determinism
//! comparison. Histogram buckets are log2: the pair `[lo, count]`
//! counts observations in `[lo, 2·lo)` (`[0, 2)` for the first
//! bucket).

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::Path;

use crate::event::{Event, EventKind};
use crate::json::Json;

/// Current manifest schema version.
pub const QTRACE_VERSION: u64 = 2;

/// Oldest manifest schema version [`Manifest::from_json`] still reads.
pub const QTRACE_VERSION_MIN: u64 = 1;

/// Aggregate statistics for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed occurrences.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Shortest occurrence, nanoseconds.
    pub min_ns: u64,
    /// Longest occurrence, nanoseconds.
    pub max_ns: u64,
    /// Median occurrence, nanoseconds (nearest-rank over the recorder's
    /// bounded reservoir; 0 when unknown, e.g. a version-1 manifest).
    pub p50_ns: u64,
    /// 90th-percentile occurrence, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile occurrence, nanoseconds.
    pub p99_ns: u64,
}

impl Default for SpanStat {
    fn default() -> Self {
        SpanStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            p50_ns: 0,
            p90_ns: 0,
            p99_ns: 0,
        }
    }
}

impl SpanStat {
    /// Folds one occurrence of `ns` nanoseconds into the stats.
    pub fn merge(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Mean nanoseconds per occurrence (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Number of log2 buckets (covers the full `u64` range).
const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucketed distribution of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Bucket index of `value`: 0 covers `{0, 1}`, bucket `i` covers
    /// `[2^i, 2^(i+1))`.
    fn bucket(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Lower bound of bucket `i` (0 for the first bucket).
    fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Folds another histogram into this one (bucket-wise sum). Used when
    /// merging per-thread recorder shards at drain time.
    pub fn absorb(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(bucket_lo, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), c))
            .collect()
    }

    /// Rebuilds a histogram from serialized `(bucket_lo, count)` pairs.
    fn from_parts(buckets: &[(u64, u64)], count: u64, sum: u64) -> Result<Self, String> {
        let mut h = Histogram {
            count,
            sum,
            ..Histogram::default()
        };
        for &(lo, c) in buckets {
            let i = Self::bucket(lo.max(1));
            if Self::bucket_lo(i) != lo && lo != 0 {
                return Err(format!("bucket bound {lo} is not a power of two"));
            }
            h.counts[if lo == 0 { 0 } else { i }] += c;
        }
        Ok(h)
    }
}

/// A manifest parse/validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestError {
    /// The document is not valid JSON.
    Json(crate::json::JsonError),
    /// The document parsed but does not match the manifest schema.
    Schema(String),
    /// The document declares an unsupported `qtrace_version`.
    Version(u64),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Json(e) => write!(f, "manifest is not valid JSON: {e}"),
            ManifestError::Schema(what) => write!(f, "manifest schema mismatch: {what}"),
            ManifestError::Version(v) => {
                write!(
                    f,
                    "unsupported qtrace_version {v} \
                     (supported: {QTRACE_VERSION_MIN}..={QTRACE_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// A complete run manifest. See the module docs for the JSON schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Run name (the figure/driver that produced it).
    pub name: String,
    /// Wall-clock creation time, milliseconds since the Unix epoch.
    /// Excluded from [`Manifest::normalized`] comparisons.
    pub created_unix_ms: u64,
    /// Span statistics keyed by path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Counters keyed by name.
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges keyed by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms keyed by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Captured timeline events in timestamp order; empty unless the
    /// recorder had [`capture_events`](crate::Recorder::capture_events)
    /// turned on.
    pub events: Vec<Event>,
}

impl Manifest {
    /// An empty manifest named `name` (useful for tests and baselines).
    pub fn empty(name: &str) -> Manifest {
        Manifest {
            name: name.to_owned(),
            created_unix_ms: 0,
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// A copy with every wall-time field zeroed: `created_unix_ms`, the
    /// span `total_ns`/`min_ns`/`max_ns`/`p50_ns`/`p90_ns`/`p99_ns`,
    /// event `ts_ns`/`tid` (events are then re-sorted by path and kind,
    /// since their timestamp order is scheduling-dependent), and the
    /// `sum`/bucket contents of every histogram whose name ends in
    /// `_ns` (wall-time distributions by convention — e.g. the qserve
    /// ops plane's `queue_wait_ns`; their sample *count* is a pure
    /// function of the workload and is kept). Two identical runs
    /// produce byte-identical `normalized().to_json()` output
    /// regardless of machine speed or thread interleaving.
    pub fn normalized(&self) -> Manifest {
        let mut m = self.clone();
        m.created_unix_ms = 0;
        for stat in m.spans.values_mut() {
            stat.total_ns = 0;
            stat.min_ns = 0;
            stat.max_ns = 0;
            stat.p50_ns = 0;
            stat.p90_ns = 0;
            stat.p99_ns = 0;
        }
        for (name, hist) in m.histograms.iter_mut() {
            if name.ends_with("_ns") {
                hist.counts = [0; HISTOGRAM_BUCKETS];
                hist.sum = 0;
            }
        }
        for ev in &mut m.events {
            ev.ts_ns = 0;
            ev.tid = 0;
        }
        m.events
            .sort_by(|a, b| (&a.path, a.kind).cmp(&(&b.path, b.kind)));
        m
    }

    /// Serializes the manifest as canonical JSON: fixed field order,
    /// sections sorted by key, 2-space indentation, trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"qtrace_version\": {QTRACE_VERSION},\n"));
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        out.push_str(&format!(
            "  \"created_unix_ms\": {},\n",
            self.created_unix_ms
        ));
        section(&mut out, "spans", self.spans.iter(), |(path, s)| {
            format!(
                "{{\"path\": \"{}\", \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
                escape(path),
                s.count,
                s.total_ns,
                if s.count == 0 { 0 } else { s.min_ns },
                s.max_ns,
                s.p50_ns,
                s.p90_ns,
                s.p99_ns,
            )
        });
        out.push_str(",\n");
        section(&mut out, "counters", self.counters.iter(), |(name, v)| {
            format!("{{\"name\": \"{}\", \"value\": {v}}}", escape(name))
        });
        out.push_str(",\n");
        section(&mut out, "gauges", self.gauges.iter(), |(name, v)| {
            format!("{{\"name\": \"{}\", \"max\": {v}}}", escape(name))
        });
        out.push_str(",\n");
        section(
            &mut out,
            "histograms",
            self.histograms.iter(),
            |(name, h)| {
                let buckets: Vec<String> = h
                    .buckets()
                    .iter()
                    .map(|(lo, c)| format!("[{lo}, {c}]"))
                    .collect();
                format!(
                    "{{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                    escape(name),
                    h.count(),
                    h.sum(),
                    buckets.join(", "),
                )
            },
        );
        if !self.events.is_empty() {
            out.push_str(",\n");
            section(&mut out, "events", self.events.iter(), |ev| {
                format!(
                    "{{\"path\": \"{}\", \"ph\": \"{}\", \"tid\": {}, \"ts_ns\": {}}}",
                    escape(&ev.path),
                    ev.kind.code(),
                    ev.tid,
                    ev.ts_ns,
                )
            });
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a manifest from its JSON serialization. Tolerant of field
    /// order; strict about structure and version.
    pub fn from_json(input: &str) -> Result<Manifest, ManifestError> {
        let doc = Json::parse(input).map_err(ManifestError::Json)?;
        let version = field_u64(&doc, "qtrace_version")?;
        if !(QTRACE_VERSION_MIN..=QTRACE_VERSION).contains(&version) {
            return Err(ManifestError::Version(version));
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| schema("missing string field 'name'"))?
            .to_owned();
        let created_unix_ms = field_u64(&doc, "created_unix_ms")?;

        let mut manifest = Manifest {
            name,
            created_unix_ms,
            ..Manifest::empty("")
        };
        for entry in section_entries(&doc, "spans")? {
            let path = entry_str(entry, "path")?.to_owned();
            let count = entry_u64(entry, "count")?;
            let stat = SpanStat {
                count,
                total_ns: entry_u64(entry, "total_ns")?,
                min_ns: if count == 0 {
                    u64::MAX
                } else {
                    entry_u64(entry, "min_ns")?
                },
                max_ns: entry_u64(entry, "max_ns")?,
                // Quantiles arrived in version 2; absent means unknown.
                p50_ns: entry_u64_or(entry, "p50_ns", 0),
                p90_ns: entry_u64_or(entry, "p90_ns", 0),
                p99_ns: entry_u64_or(entry, "p99_ns", 0),
            };
            manifest.spans.insert(path, stat);
        }
        for entry in section_entries(&doc, "counters")? {
            manifest.counters.insert(
                entry_str(entry, "name")?.to_owned(),
                entry_u64(entry, "value")?,
            );
        }
        for entry in section_entries(&doc, "gauges")? {
            manifest.gauges.insert(
                entry_str(entry, "name")?.to_owned(),
                entry_u64(entry, "max")?,
            );
        }
        for entry in section_entries(&doc, "histograms")? {
            let name = entry_str(entry, "name")?.to_owned();
            let pairs = entry
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| schema("histogram entry missing 'buckets' array"))?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| schema("histogram bucket is not a [lo, count] pair"))?;
                    Ok((
                        pair[0].as_u64().ok_or_else(|| schema("bucket lo"))?,
                        pair[1].as_u64().ok_or_else(|| schema("bucket count"))?,
                    ))
                })
                .collect::<Result<Vec<(u64, u64)>, ManifestError>>()?;
            let h =
                Histogram::from_parts(&pairs, entry_u64(entry, "count")?, entry_u64(entry, "sum")?)
                    .map_err(ManifestError::Schema)?;
            manifest.histograms.insert(name, h);
        }
        // The events section is optional (absent in version 1 and in
        // version-2 manifests with no captured events).
        if doc.get("events").is_some() {
            for entry in section_entries(&doc, "events")? {
                let code = entry_str(entry, "ph")?;
                let kind = EventKind::from_code(code)
                    .ok_or_else(|| schema(format!("unknown event phase '{code}'")))?;
                manifest.events.push(Event {
                    path: entry_str(entry, "path")?.into(),
                    kind,
                    tid: entry_u64(entry, "tid")?,
                    ts_ns: entry_u64(entry, "ts_ns")?,
                });
            }
        }
        Ok(manifest)
    }

    /// Writes the canonical JSON serialization to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Reads and parses a manifest file.
    pub fn load(path: &Path) -> Result<Manifest, std::io::Error> {
        let text = std::fs::read_to_string(path)?;
        Manifest::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Renders one `"key": [entries…]` section with one entry per line.
fn section<T>(
    out: &mut String,
    key: &str,
    entries: impl ExactSizeIterator<Item = T>,
    render: impl Fn(T) -> String,
) {
    if entries.len() == 0 {
        out.push_str(&format!("  \"{key}\": []"));
        return;
    }
    out.push_str(&format!("  \"{key}\": [\n"));
    let last = entries.len() - 1;
    for (i, entry) in entries.enumerate() {
        out.push_str("    ");
        out.push_str(&render(entry));
        out.push_str(if i < last { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
}

fn schema(what: impl Into<String>) -> ManifestError {
    ManifestError::Schema(what.into())
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, ManifestError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| schema(format!("missing integer field '{key}'")))
}

fn section_entries<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], ManifestError> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| schema(format!("missing array section '{key}'")))
}

fn entry_str<'a>(entry: &'a Json, key: &str) -> Result<&'a str, ManifestError> {
    entry
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| schema(format!("entry missing string field '{key}'")))
}

fn entry_u64(entry: &Json, key: &str) -> Result<u64, ManifestError> {
    entry
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| schema(format!("entry missing integer field '{key}'")))
}

/// Like [`entry_u64`] but tolerates a missing field (later-version
/// additions read from older documents).
fn entry_u64_or(entry: &Json, key: &str, default: u64) -> u64 {
    entry.get(key).and_then(Json::as_u64).unwrap_or(default)
}

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::empty("unit");
        m.created_unix_ms = 17;
        let mut s = SpanStat::default();
        s.merge(100);
        s.merge(300);
        m.spans.insert("a/b".into(), s);
        m.counters.insert("swaps".into(), 42);
        m.gauges.insert("peak".into(), 1 << 20);
        let mut h = Histogram::default();
        h.record(0);
        h.record(3);
        h.record(300);
        m.histograms.insert("lens".into(), h);
        m.events.push(Event {
            path: "a/b".into(),
            kind: EventKind::Begin,
            tid: 1,
            ts_ns: 120,
        });
        m.events.push(Event {
            path: "a/b".into(),
            kind: EventKind::End,
            tid: 1,
            ts_ns: 420,
        });
        m
    }

    #[test]
    fn span_stats_fold() {
        let mut s = SpanStat::default();
        s.merge(5);
        s.merge(15);
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (2, 20, 5, 15));
        assert_eq!(s.mean_ns(), 10.0);
        assert_eq!(SpanStat::default().mean_ns(), 0.0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(
            h.buckets(),
            vec![(0, 2), (2, 2), (4, 2), (8, 1), (1 << 63, 1)]
        );
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn json_round_trips_exactly() {
        let m = sample();
        let json = m.to_json();
        let parsed = Manifest::from_json(&json).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.to_json(), json, "canonical form is a fixed point");
    }

    #[test]
    fn empty_manifest_round_trips() {
        let m = Manifest::empty("nothing");
        let parsed = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn normalized_strips_wall_time_only() {
        let mut a = sample();
        let mut b = sample();
        a.created_unix_ms = 1;
        b.created_unix_ms = 2;
        a.spans.get_mut("a/b").unwrap().total_ns = 999;
        a.spans.get_mut("a/b").unwrap().p99_ns = 999;
        // Different interleaving: other thread, other timestamps,
        // other arrival order — same multiset of (path, kind).
        b.events.reverse();
        for (i, ev) in b.events.iter_mut().enumerate() {
            ev.tid = 7;
            ev.ts_ns = 1000 + i as u64;
        }
        assert_ne!(a.to_json(), b.to_json());
        assert_eq!(a.normalized().to_json(), b.normalized().to_json());
        // Non-time differences survive normalization.
        b.counters.insert("swaps".into(), 43);
        assert_ne!(a.normalized().to_json(), b.normalized().to_json());
        // And so does a genuinely different event set.
        let mut c = sample();
        c.events.pop();
        assert_ne!(sample().normalized().to_json(), c.normalized().to_json());
    }

    #[test]
    fn normalized_zeroes_ns_histogram_contents_but_keeps_counts() {
        let mut a = sample();
        let mut b = sample();
        // Same sample count, machine-speed-dependent values.
        let mut fast = Histogram::default();
        fast.record(10);
        fast.record(20);
        let mut slow = Histogram::default();
        slow.record(100_000);
        slow.record(200_000);
        a.histograms.insert("q/wait_ns".into(), fast);
        b.histograms.insert("q/wait_ns".into(), slow);
        assert_ne!(a.to_json(), b.to_json());
        assert_eq!(a.normalized().to_json(), b.normalized().to_json());
        // The deterministic sample count survives normalization...
        let norm = a.normalized();
        assert_eq!(norm.histograms["q/wait_ns"].count(), 2);
        assert!(norm.histograms["q/wait_ns"].buckets().is_empty());
        // ...and a count mismatch still breaks byte-identity.
        b.histograms.get_mut("q/wait_ns").unwrap().record(1);
        assert_ne!(a.normalized().to_json(), b.normalized().to_json());
        // Histograms without the `_ns` suffix are untouched.
        assert_eq!(
            norm.histograms["lens"].buckets(),
            sample().histograms["lens"].buckets()
        );
    }

    #[test]
    fn normalized_ns_histograms_round_trip() {
        let mut m = sample();
        let mut h = Histogram::default();
        h.record(5);
        h.record(5000);
        m.histograms.insert("tenant/0/e2e_ns".into(), h);
        let norm = m.normalized();
        let parsed = Manifest::from_json(&norm.to_json()).unwrap();
        assert_eq!(parsed, norm);
        assert_eq!(parsed.to_json(), norm.to_json());
    }

    #[test]
    fn reads_version_1_documents() {
        let v1 = r#"{
  "qtrace_version": 1,
  "name": "old",
  "created_unix_ms": 5,
  "spans": [
    {"path": "a", "count": 2, "total_ns": 20, "min_ns": 5, "max_ns": 15}
  ],
  "counters": [],
  "gauges": [],
  "histograms": []
}"#;
        let m = Manifest::from_json(v1).unwrap();
        assert_eq!(m.name, "old");
        let s = &m.spans["a"];
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (2, 20, 5, 15));
        assert_eq!((s.p50_ns, s.p90_ns, s.p99_ns), (0, 0, 0));
        assert!(m.events.is_empty());
        // Re-serializing upgrades to the current version.
        assert!(m.to_json().contains("\"qtrace_version\": 2"));
    }

    #[test]
    fn events_section_is_omitted_when_empty() {
        let mut m = sample();
        m.events.clear();
        assert!(!m.to_json().contains("\"events\""));
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(matches!(
            Manifest::from_json("not json"),
            Err(ManifestError::Json(_))
        ));
        assert!(matches!(
            Manifest::from_json("{\"qtrace_version\": 99}"),
            Err(ManifestError::Version(99))
        ));
        let missing = "{\"qtrace_version\": 1, \"name\": \"x\"}";
        assert!(matches!(
            Manifest::from_json(missing),
            Err(ManifestError::Schema(_))
        ));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("qtrace_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), m);
        std::fs::remove_file(path).unwrap();
    }
}
