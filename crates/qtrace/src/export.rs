//! Chrome Trace Format export: turn a drained [`Manifest`]'s event
//! timeline into JSON loadable by [Perfetto](https://ui.perfetto.dev)
//! or `chrome://tracing`.
//!
//! The emitted document is the CTF "JSON object format":
//!
//! ```json
//! {
//!   "displayTimeUnit": "ns",
//!   "traceEvents": [
//!     {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
//!      "args": {"name": "fig09_ip_ic"}},
//!     {"name": "qcompile/compile", "cat": "qtrace", "ph": "B",
//!      "ts": 0.120, "pid": 1, "tid": 0},
//!     {"name": "qcompile/compile", "cat": "qtrace", "ph": "E",
//!      "ts": 412.345, "pid": 1, "tid": 0}
//!   ]
//! }
//! ```
//!
//! `ts` is microseconds (fractional, nanosecond resolution) per the CTF
//! spec; `tid` is the recorder's small per-thread ordinal, and the
//! single `pid` is 1 (one process). Instant events carry `"s": "t"`
//! (thread scope). Everything is plain JSON produced with the crate's
//! own string machinery, so the output round-trips through
//! [`crate::json::parse`] — tests and the `xray` bench binary rely on
//! that.

use std::io::Write;
use std::path::Path;

use crate::manifest::{escape, Manifest};
use crate::EventKind;

/// Renders the manifest's event timeline as a Chrome Trace Format JSON
/// document. Aggregate-only manifests (no events) yield a valid trace
/// containing just the process-name metadata record.
pub fn chrome_trace(manifest: &Manifest) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
    out.push_str(&format!(
        "    {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {{\"name\": \"{}\"}}}}",
        escape(&manifest.name)
    ));
    for ev in &manifest.events {
        let us = ev.ts_ns as f64 / 1000.0;
        let scope = match ev.kind {
            EventKind::Instant => ", \"s\": \"t\"",
            EventKind::Begin | EventKind::End => "",
        };
        out.push_str(&format!(
            ",\n    {{\"name\": \"{}\", \"cat\": \"qtrace\", \"ph\": \"{}\", \
             \"ts\": {us:.3}, \"pid\": 1, \"tid\": {}{scope}}}",
            escape(&ev.path),
            ev.kind.code(),
            ev.tid,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes [`chrome_trace`] output to `path`.
pub fn save_chrome_trace(manifest: &Manifest, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace(manifest).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::{Event, Recorder};

    fn traced_manifest() -> Manifest {
        let rec = Recorder::new();
        rec.enable();
        rec.capture_events(true);
        {
            let root = rec.span("compile");
            rec.instant("fallback");
            root.child("route").finish();
        }
        rec.take_manifest("unit")
    }

    #[test]
    fn trace_round_trips_through_own_parser() {
        let manifest = traced_manifest();
        let trace = chrome_trace(&manifest);
        let doc = Json::parse(&trace).expect("CTF output is valid JSON");
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ns")
        );
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // Metadata record + 2 begin + 2 end + 1 instant.
        assert_eq!(events.len(), 1 + manifest.events.len());
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        for (json, ev) in events[1..].iter().zip(&manifest.events) {
            assert_eq!(json.get("name").and_then(Json::as_str), Some(&*ev.path));
            assert_eq!(json.get("ph").and_then(Json::as_str), Some(ev.kind.code()));
            assert_eq!(json.get("pid").and_then(Json::as_u64), Some(1));
            assert_eq!(json.get("tid").and_then(Json::as_u64), Some(ev.tid));
            let ts = json.get("ts").and_then(Json::as_f64).unwrap();
            let expect_us = ev.ts_ns as f64 / 1000.0;
            assert!((ts - expect_us).abs() < 0.001, "{ts} vs {expect_us}");
        }
        // Instants carry a thread scope.
        let instant = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .expect("instant event present");
        assert_eq!(instant.get("s").and_then(Json::as_str), Some("t"));
    }

    #[test]
    fn eventless_manifest_yields_valid_trace() {
        let manifest = Manifest::empty("quiet");
        let doc = Json::parse(&chrome_trace(&manifest)).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 1); // metadata only
    }

    #[test]
    fn escapes_awkward_paths() {
        let mut manifest = Manifest::empty("q\"uote");
        manifest.events.push(Event {
            path: "pa\\th\n".into(),
            kind: EventKind::Instant,
            tid: 0,
            ts_ns: 1,
        });
        let trace = chrome_trace(&manifest);
        let doc = Json::parse(&trace).expect("escaped output parses");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(
            events[1].get("name").and_then(Json::as_str),
            Some("pa\\th\n")
        );
    }

    #[test]
    fn save_writes_the_trace() {
        let dir = std::env::temp_dir().join("qtrace_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let manifest = traced_manifest();
        save_chrome_trace(&manifest, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, chrome_trace(&manifest));
        std::fs::remove_file(path).unwrap();
    }
}
