//! Zero-dependency run telemetry for the QAOA compilation stack.
//!
//! The crate provides five primitives, all recorded into a thread-safe
//! [`Recorder`]:
//!
//! * **Spans** — scoped wall-clock timers with parent/child nesting.
//!   Nesting is encoded in the span *path* (`"qcompile/compile/route"`);
//!   a child created with [`Span::child`] extends its parent's path.
//!   Stats aggregate per path: call count, total, min, max and exact
//!   p50/p90/p99 nanoseconds (from a bounded per-path reservoir).
//! * **Counters** — monotonically increasing `u64` sums (SWAPs inserted,
//!   kernel dispatches, routed layers).
//! * **Gauges** — high-water marks (`max` of every observation): peak
//!   live amplitudes, worker threads used.
//! * **Histograms** — log2-bucketed distributions of `u64` observations
//!   (fused-run lengths, per-layer SWAP counts).
//! * **Events** — opt-in timestamped span begin/end and instant markers
//!   captured into bounded per-thread-shard rings (see [`event`]), the
//!   raw material for Chrome-Trace/Perfetto timelines ([`export`]).
//!
//! Draining a recorder yields a [`Manifest`] — a canonical,
//! deterministically ordered JSON document (see [`manifest`]) that the
//! `bench` crate writes next to figure tables (`--manifest <path>`) and
//! that the `regress` binary diffs against committed baselines in CI.
//!
//! # The global recorder
//!
//! Deep call sites (simulator kernels, the router's layer loop) cannot
//! thread a `&Recorder` through their signatures without polluting every
//! public API, so the crate exposes a process-global recorder behind
//! [`global`]. It starts **disabled**: every hot-path hook first checks
//! [`enabled`] (one relaxed atomic load) and records nothing until a
//! driver opts in with [`enable`]. Spans still *measure* while disabled —
//! [`Span::finish`] always returns the elapsed wall time, so callers like
//! `qcompile`'s `PassTrace` get their per-run timings for free — they
//! just skip the shared-state write. Event capture is a second opt-in on
//! top ([`Recorder::capture_events`]): aggregate-only runs never pay for
//! event storage.
//!
//! # Drain generations
//!
//! Every [`Recorder::take_manifest`] and [`Recorder::disable`] bumps an
//! internal generation counter, and a [`Span`] only records into the
//! generation it was created in. A span that outlives a drain (or a
//! disable) is discarded instead of polluting the *next* manifest.
//!
//! ```
//! qtrace::enable();
//! {
//!     let run = qtrace::global().span("demo/run");
//!     let step = run.child("step");
//!     qtrace::global().add("demo/widgets", 3);
//!     qtrace::global().observe("demo/sizes", 17);
//!     step.finish();
//! } // `run` records on drop
//! let manifest = qtrace::take("demo");
//! assert_eq!(manifest.counters["demo/widgets"], 3);
//! assert!(manifest.spans.contains_key("demo/run/step"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod manifest;

pub use event::{Event, EventKind};
pub use manifest::{Histogram, Manifest, ManifestError, SpanStat};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use event::{EventRing, DEFAULT_EVENT_CAPACITY, EVENT_SHARDS};

/// Per-path reservoir size for exact quantiles. Spans are per-pass /
/// per-run — hundreds to low thousands per drain — so quantiles are
/// exact in practice; beyond the cap the reservoir keeps a sliding
/// window of the most recent `SPAN_RESERVOIR` occurrences.
pub const SPAN_RESERVOIR: usize = 512;

/// Thread-safe telemetry sink: spans, counters, gauges, histograms and
/// (opt-in) timeline events.
///
/// All mutating methods take `&self`. Both the aggregate state and the
/// timeline rings are sharded by thread ordinal, so concurrent batch
/// workers almost never contend on a lock: each recording call locks
/// only its own thread's shard, and [`Recorder::take_manifest`] merges
/// the shards (sum/min/max/bucket-wise — all order-independent) at drain
/// time. When the recorder is disabled every recording method is a no-op
/// after one atomic load.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    events_on: AtomicBool,
    generation: AtomicU64,
    event_capacity: AtomicUsize,
    state: [Mutex<State>; STATE_SHARDS],
    shards: [Mutex<EventRing>; EVENT_SHARDS],
}

/// Per-path span aggregate plus the bounded quantile reservoir.
#[derive(Debug, Default)]
struct SpanAgg {
    stat: SpanStat,
    samples: Vec<u64>,
}

impl SpanAgg {
    /// Folds another shard's aggregate for the same path into this one.
    /// All fields combine order-independently except the reservoir, which
    /// keeps the first `SPAN_RESERVOIR` samples in shard order; the
    /// quantiles derived from it are wall-time data and are zeroed by
    /// manifest normalization anyway.
    fn absorb(&mut self, other: SpanAgg) {
        self.stat.count = self.stat.count.saturating_add(other.stat.count);
        self.stat.total_ns = self.stat.total_ns.saturating_add(other.stat.total_ns);
        self.stat.min_ns = self.stat.min_ns.min(other.stat.min_ns);
        self.stat.max_ns = self.stat.max_ns.max(other.stat.max_ns);
        for sample in other.samples {
            if self.samples.len() >= SPAN_RESERVOIR {
                break;
            }
            self.samples.push(sample);
        }
    }

    fn merge(&mut self, ns: u64) {
        self.stat.merge(ns);
        if self.samples.len() < SPAN_RESERVOIR {
            self.samples.push(ns);
        } else {
            // Deterministic sliding window: overwrite round-robin.
            let slot = (self.stat.count - 1) as usize % SPAN_RESERVOIR;
            self.samples[slot] = ns;
        }
    }

    /// The aggregate with p50/p90/p99 computed from the reservoir
    /// (nearest-rank on the sorted samples).
    fn finalized(&self) -> SpanStat {
        let mut stat = self.stat;
        if !self.samples.is_empty() {
            let mut sorted = self.samples.clone();
            sorted.sort_unstable();
            let rank = |q: f64| {
                let n = sorted.len();
                let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
                sorted[idx]
            };
            stat.p50_ns = rank(0.50);
            stat.p90_ns = rank(0.90);
            stat.p99_ns = rank(0.99);
        }
        stat
    }
}

#[derive(Debug, Default)]
struct State {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl State {
    const fn new() -> State {
        State {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

/// Aggregate-state shard count. Matches the event-ring sharding: both
/// are indexed by thread ordinal, so a batch worker touches exactly one
/// state shard and one event shard.
const STATE_SHARDS: usize = EVENT_SHARDS;

/// Workaround for pre-inline-const array initialization of non-`Copy`
/// shards. The interior mutability is the point: each constant is used
/// once per array slot as an initializer, never read as a shared value.
#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SHARD: Mutex<EventRing> = Mutex::new(EventRing::new());
#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_STATE: Mutex<State> = Mutex::new(State::new());

impl Recorder {
    /// A new, disabled recorder with no recorded data.
    pub const fn new() -> Recorder {
        Recorder {
            enabled: AtomicBool::new(false),
            events_on: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            event_capacity: AtomicUsize::new(DEFAULT_EVENT_CAPACITY),
            state: [EMPTY_STATE; STATE_SHARDS],
            shards: [EMPTY_SHARD; EVENT_SHARDS],
        }
    }

    /// The calling thread's aggregate-state shard.
    fn state_shard(&self) -> &Mutex<State> {
        &self.state[event::thread_ordinal() as usize % STATE_SHARDS]
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off. Already-recorded data is kept, but spans
    /// created before the disable no longer record (the drain generation
    /// advances).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Turns timeline-event capture on or off. Events are only recorded
    /// while the recorder is *also* enabled.
    pub fn capture_events(&self, on: bool) {
        self.events_on.store(on, Ordering::Relaxed);
    }

    /// Whether timeline events are being captured right now.
    pub fn events_enabled(&self) -> bool {
        self.is_enabled() && self.events_on.load(Ordering::Relaxed)
    }

    /// Caps each event shard at `capacity` events (further events are
    /// dropped and counted). Mainly for tests; the default is
    /// [`DEFAULT_EVENT_CAPACITY`].
    pub fn set_event_capacity(&self, capacity: usize) {
        self.event_capacity.store(capacity, Ordering::Relaxed);
    }

    fn push_event(&self, path: &Arc<str>, kind: EventKind, ts_ns: u64) {
        let tid = event::thread_ordinal();
        let ev = Event {
            path: Arc::clone(path),
            kind,
            tid,
            ts_ns,
        };
        let capacity = self.event_capacity.load(Ordering::Relaxed);
        let shard = &self.shards[tid as usize % EVENT_SHARDS];
        shard.lock().expect("event shard lock").push(ev, capacity);
    }

    /// Records an instant marker event at `path`. No-op unless event
    /// capture is on.
    pub fn instant(&self, path: &str) {
        if self.events_enabled() {
            self.push_event(&Arc::from(path), EventKind::Instant, event::now_ns());
        }
    }

    /// Records one pre-timestamped instant marker at `path` per entry in
    /// `ts_list`, all under a single shard lock. Timestamps come from
    /// [`event::now_ns`] captured when each moment occurred; hot loops
    /// should buffer those locally and flush once here instead of calling
    /// [`Recorder::instant`] per iteration.
    pub fn instants_at(&self, path: &str, ts_list: &[u64]) {
        if ts_list.is_empty() || !self.events_enabled() {
            return;
        }
        let tid = event::thread_ordinal();
        let path: Arc<str> = Arc::from(path);
        let capacity = self.event_capacity.load(Ordering::Relaxed);
        let shard = &self.shards[tid as usize % EVENT_SHARDS];
        let mut ring = shard.lock().expect("event shard lock");
        for &ts_ns in ts_list {
            ring.push(
                Event {
                    path: Arc::clone(&path),
                    kind: EventKind::Instant,
                    tid,
                    ts_ns,
                },
                capacity,
            );
        }
    }

    /// Starts a root span at `path`. The span measures wall time from now
    /// until [`Span::finish`] (or drop) and records into this recorder —
    /// unless the recorder was disabled at creation, in which case it
    /// only measures.
    pub fn span(&self, path: &str) -> Span<'_> {
        let path: Option<Arc<str>> = self.is_enabled().then(|| Arc::from(path));
        let start = Instant::now();
        if let Some(path) = &path {
            if self.events_enabled() {
                // The begin event reuses the start instant: one clock
                // read stamps both the span and its timeline event.
                self.push_event(path, EventKind::Begin, event::ns_since(start));
            }
        }
        Span {
            rec: self,
            path,
            generation: self.generation.load(Ordering::Relaxed),
            start,
        }
    }

    /// Records one completed span occurrence at `path` directly.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        if !self.is_enabled() {
            return;
        }
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut state = self.state_shard().lock().expect("recorder lock");
        state.spans.entry_or_default(path).merge(ns);
    }

    /// Records many completed span occurrences at `path` (durations in
    /// nanoseconds) under a single lock acquisition — the span analogue
    /// of [`Recorder::observe_many`]. Serving loops that collect
    /// thousands of per-request latencies should buffer locally and
    /// flush once instead of paying a lock round-trip per request.
    pub fn record_spans(&self, path: &str, elapsed_ns: &[u64]) {
        if elapsed_ns.is_empty() || !self.is_enabled() {
            return;
        }
        let mut state = self.state_shard().lock().expect("recorder lock");
        let agg = state.spans.entry_or_default(path);
        for &ns in elapsed_ns {
            agg.merge(ns);
        }
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state_shard().lock().expect("recorder lock");
        let slot = state.counters.entry_or_default(name);
        *slot = slot.saturating_add(delta);
    }

    /// Raises gauge `name` to `value` if `value` exceeds its current max.
    pub fn gauge_max(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state_shard().lock().expect("recorder lock");
        let slot = state.gauges.entry_or_default(name);
        *slot = (*slot).max(value);
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state_shard().lock().expect("recorder lock");
        state.histograms.entry_or_default(name).record(value);
    }

    /// Records every value in `values` into histogram `name` under a
    /// single lock acquisition. Hot loops that would otherwise call
    /// [`Recorder::observe`] per iteration should buffer locally and
    /// flush once — same result, a fraction of the lock traffic.
    pub fn observe_many(&self, name: &str, values: &[u64]) {
        if values.is_empty() || !self.is_enabled() {
            return;
        }
        let mut state = self.state_shard().lock().expect("recorder lock");
        let hist = state.histograms.entry_or_default(name);
        for value in values {
            hist.record(*value);
        }
    }

    /// Absorbs an externally accumulated [`Histogram`] into histogram
    /// `name` under one lock acquisition (bucket-wise add). The drain
    /// path for subsystems that keep their own histograms — e.g. the
    /// qserve ops plane's per-tenant latency histograms — instead of
    /// calling [`Recorder::observe`] per sample. Empty histograms are
    /// skipped so a no-op drain leaves the manifest untouched.
    pub fn observe_histogram(&self, name: &str, hist: &Histogram) {
        if hist.count() == 0 || !self.is_enabled() {
            return;
        }
        let mut state = self.state_shard().lock().expect("recorder lock");
        state.histograms.entry_or_default(name).absorb(hist);
    }

    /// Drains everything recorded so far into a [`Manifest`] named
    /// `name`, leaving the recorder empty (but keeping its enabled
    /// state). Spans created before the drain stop recording (the drain
    /// generation advances), and any captured timeline events are drained
    /// into the manifest's `events` section in timestamp order.
    pub fn take_manifest(&self, name: &str) -> Manifest {
        self.generation.fetch_add(1, Ordering::Relaxed);
        // Merge the per-thread state shards. Every combination rule is
        // order-independent (sum, min/max, bucket-wise add), so the
        // merged aggregates cannot depend on scheduling; only the span
        // quantile reservoirs keep shard order, and those are wall-time
        // data that normalization zeroes.
        let mut merged = State::new();
        for shard in &self.state {
            let state = std::mem::take(&mut *shard.lock().expect("recorder lock"));
            for (path, agg) in state.spans {
                match merged.spans.entry(path) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(agg);
                    }
                    std::collections::btree_map::Entry::Occupied(slot) => {
                        slot.into_mut().absorb(agg);
                    }
                }
            }
            for (name, value) in state.counters {
                let slot = merged.counters.entry(name).or_insert(0);
                *slot = slot.saturating_add(value);
            }
            for (name, value) in state.gauges {
                let slot = merged.gauges.entry(name).or_insert(0);
                *slot = (*slot).max(value);
            }
            for (name, hist) in state.histograms {
                merged.histograms.entry(name).or_default().absorb(&hist);
            }
        }
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for shard in &self.shards {
            let (evs, d) = shard.lock().expect("event shard lock").drain();
            events.extend(evs);
            dropped += d;
        }
        events.sort_by(|a, b| {
            (a.ts_ns, a.tid, &a.path, a.kind).cmp(&(b.ts_ns, b.tid, &b.path, b.kind))
        });
        let mut counters = merged.counters;
        if dropped > 0 {
            let slot = counters
                .entry("qtrace/dropped_events".to_owned())
                .or_insert(0);
            *slot = slot.saturating_add(dropped);
        }
        Manifest {
            name: name.to_owned(),
            created_unix_ms: unix_ms(),
            spans: merged
                .spans
                .into_iter()
                .map(|(path, agg)| (path, agg.finalized()))
                .collect(),
            counters,
            gauges: merged.gauges,
            histograms: merged.histograms,
            events,
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

/// `BTreeMap::entry(..).or_default()` without allocating a `String` key
/// when the entry already exists — recording hits existing keys almost
/// always.
trait EntryOrDefault<V: Default> {
    fn entry_or_default(&mut self, key: &str) -> &mut V;
}

impl<V: Default> EntryOrDefault<V> for BTreeMap<String, V> {
    fn entry_or_default(&mut self, key: &str) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key.to_owned(), V::default());
        }
        self.get_mut(key).expect("just inserted")
    }
}

/// A scoped wall-clock timer. Created by [`Recorder::span`] /
/// [`Span::child`]; records its elapsed time into the recorder when
/// finished or dropped (if the recorder was enabled at creation and no
/// drain happened in between).
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; finish() or let it drop at scope end"]
pub struct Span<'a> {
    rec: &'a Recorder,
    /// Full span path; `None` when the recorder was disabled at creation
    /// (the span then only measures).
    path: Option<Arc<str>>,
    /// Drain generation at creation; the span only records while the
    /// recorder is still in this generation.
    generation: u64,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts a child span whose path is `self.path + "/" + name`.
    ///
    /// The child borrows nothing from the parent besides the recorder, so
    /// parent and child may finish in any order; the *path* is what
    /// encodes nesting.
    pub fn child(&self, name: &str) -> Span<'a> {
        let path: Option<Arc<str>> = self.path.as_ref().map(|p| Arc::from(format!("{p}/{name}")));
        let start = Instant::now();
        if let Some(path) = &path {
            if self.rec.events_enabled() {
                self.rec
                    .push_event(path, EventKind::Begin, event::ns_since(start));
            }
        }
        Span {
            rec: self.rec,
            path,
            generation: self.rec.generation.load(Ordering::Relaxed),
            start,
        }
    }

    /// Wall time since the span started, without finishing it.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops the span, records it, and returns the measured wall time
    /// (measured even when the recorder is disabled).
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.record(elapsed);
        elapsed
    }

    fn record(&mut self, elapsed: Duration) {
        let Some(path) = self.path.take() else {
            return;
        };
        // A drain or disable since creation invalidates the span: its
        // begin event and siblings went into the previous manifest, so
        // recording now would pollute the next one.
        if self.rec.generation.load(Ordering::Relaxed) != self.generation {
            return;
        }
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        if self.rec.events_enabled() {
            // start + elapsed stamps the end event without another
            // clock read.
            let ts = event::ns_since(self.start).saturating_add(ns);
            self.rec.push_event(&path, EventKind::End, ts);
        }
        let mut state = self.rec.state_shard().lock().expect("recorder lock");
        state.spans.entry_or_default(&path).merge(ns);
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.record(self.start.elapsed());
    }
}

static GLOBAL: Recorder = Recorder::new();

/// The process-global recorder. Starts disabled; see the crate docs.
pub fn global() -> &'static Recorder {
    &GLOBAL
}

/// Whether the global recorder is recording.
pub fn enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Enables the global recorder.
pub fn enable() {
    GLOBAL.enable();
}

/// Disables the global recorder (recorded data is kept until [`take`]).
pub fn disable() {
    GLOBAL.disable();
}

/// Drains the global recorder into a [`Manifest`] named `name`.
pub fn take(name: &str) -> Manifest {
    GLOBAL.take_manifest(name)
}

/// Milliseconds since the Unix epoch (0 if the clock predates it).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_measures_but_records_nothing() {
        let rec = Recorder::new();
        let span = rec.span("a/b");
        let d = span.finish();
        assert!(d >= Duration::ZERO);
        rec.add("c", 5);
        rec.gauge_max("g", 5);
        rec.observe("h", 5);
        rec.instant("i");
        rec.enable();
        let m = rec.take_manifest("t");
        assert!(m.spans.is_empty());
        assert!(m.counters.is_empty());
        assert!(m.gauges.is_empty());
        assert!(m.histograms.is_empty());
        assert!(m.events.is_empty());
    }

    #[test]
    fn record_spans_batch_matches_per_call_recording() {
        let one = Recorder::new();
        one.enable();
        for ns in [100u64, 2500, 7, 900_000] {
            one.record_span("serve/req", Duration::from_nanos(ns));
        }
        let batch = Recorder::new();
        batch.enable();
        batch.record_spans("serve/req", &[100, 2500, 7, 900_000]);
        batch.record_spans("serve/req", &[]); // no-op

        let am = one.take_manifest("m");
        let bm = batch.take_manifest("m");
        let (a, b) = (&am.spans["serve/req"], &bm.spans["serve/req"]);
        assert_eq!(a.count, b.count);
        assert_eq!(a.total_ns, b.total_ns);
        assert_eq!(a.min_ns, b.min_ns);
        assert_eq!(a.max_ns, b.max_ns);
        assert_eq!(a.p50_ns, b.p50_ns);
        assert_eq!(a.p99_ns, b.p99_ns);

        let disabled = Recorder::new();
        disabled.record_spans("serve/req", &[1, 2, 3]);
        disabled.enable();
        assert!(disabled.take_manifest("m").spans.is_empty());
    }

    #[test]
    fn spans_aggregate_by_path_and_nest_via_child() {
        let rec = Recorder::new();
        rec.enable();
        {
            let root = rec.span("run");
            root.child("pass").finish();
            root.child("pass").finish();
            let pass = root.child("pass");
            pass.child("inner").finish();
            pass.finish();
        }
        let m = rec.take_manifest("t");
        assert_eq!(m.spans["run"].count, 1);
        assert_eq!(m.spans["run/pass"].count, 3);
        assert_eq!(m.spans["run/pass/inner"].count, 1);
        let s = &m.spans["run/pass"];
        assert!(s.min_ns <= s.max_ns && s.total_ns >= s.max_ns);
        assert!(s.p50_ns >= s.min_ns && s.p99_ns <= s.max_ns);
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns);
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let rec = Recorder::new();
        rec.enable();
        rec.add("swaps", 3);
        rec.add("swaps", 4);
        rec.gauge_max("peak", 10);
        rec.gauge_max("peak", 7);
        rec.observe("lens", 0);
        rec.observe("lens", 1);
        rec.observe("lens", 5);
        let m = rec.take_manifest("t");
        assert_eq!(m.counters["swaps"], 7);
        assert_eq!(m.gauges["peak"], 10);
        let h = &m.histograms["lens"];
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 6);
        // 0 and 1 share the first bucket; 5 lands in [4, 8).
        assert_eq!(h.buckets(), vec![(0, 2), (4, 1)]);
    }

    #[test]
    fn take_drains_the_recorder() {
        let rec = Recorder::new();
        rec.enable();
        rec.add("x", 1);
        assert_eq!(rec.take_manifest("a").counters.len(), 1);
        assert!(rec.take_manifest("b").counters.is_empty());
        assert!(rec.is_enabled(), "draining keeps the enabled state");
    }

    #[test]
    fn span_does_not_leak_across_drain() {
        // Regression test: a span created while enabled must NOT record
        // into the next manifest after a drain (or a disable) happened.
        let rec = Recorder::new();
        rec.enable();
        let leaker = rec.span("leaky");
        let first = rec.take_manifest("first");
        assert!(first.spans.is_empty());
        drop(leaker); // would previously merge into the *next* manifest
        let second = rec.take_manifest("second");
        assert!(
            second.spans.is_empty(),
            "span crossed the drain boundary: {:?}",
            second.spans.keys().collect::<Vec<_>>()
        );

        // Same story for disable(): the generation advances, so spans
        // created before it are discarded on drop.
        let stale = rec.span("stale");
        rec.disable();
        rec.enable();
        drop(stale);
        assert!(rec.take_manifest("third").spans.is_empty());
    }

    #[test]
    fn exact_quantiles_for_small_counts() {
        let rec = Recorder::new();
        rec.enable();
        for ns in 1..=100u64 {
            rec.record_span("q", Duration::from_nanos(ns));
        }
        let m = rec.take_manifest("t");
        let s = &m.spans["q"];
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p90_ns, 90);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 100);
    }

    #[test]
    fn reservoir_slides_beyond_capacity() {
        let rec = Recorder::new();
        rec.enable();
        // 2 * SPAN_RESERVOIR samples: the window retains the last 512, so
        // quantiles move with the distribution tail instead of freezing.
        for ns in 0..(2 * SPAN_RESERVOIR as u64) {
            rec.record_span("q", Duration::from_nanos(1000 + ns));
        }
        let m = rec.take_manifest("t");
        let s = &m.spans["q"];
        assert_eq!(s.count, 2 * SPAN_RESERVOIR as u64);
        assert!(s.p50_ns >= 1000 + SPAN_RESERVOIR as u64);
    }

    #[test]
    fn events_capture_spans_and_instants() {
        let rec = Recorder::new();
        rec.enable();
        rec.capture_events(true);
        {
            let root = rec.span("run");
            rec.instant("mark");
            root.child("pass").finish();
        }
        let m = rec.take_manifest("t");
        let kinds: Vec<(&str, EventKind)> = m.events.iter().map(|e| (&*e.path, e.kind)).collect();
        assert!(kinds.contains(&("run", EventKind::Begin)));
        assert!(kinds.contains(&("run", EventKind::End)));
        assert!(kinds.contains(&("run/pass", EventKind::Begin)));
        assert!(kinds.contains(&("run/pass", EventKind::End)));
        assert!(kinds.contains(&("mark", EventKind::Instant)));
        // Timestamps are drained in order.
        assert!(m.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // Capture off: no further events.
        rec.capture_events(false);
        rec.span("quiet").finish();
        assert!(rec.take_manifest("t2").events.is_empty());
    }

    #[test]
    fn event_capacity_bounds_and_counts_drops() {
        let rec = Recorder::new();
        rec.enable();
        rec.capture_events(true);
        rec.set_event_capacity(4);
        for _ in 0..10 {
            rec.instant("burst");
        }
        let m = rec.take_manifest("t");
        assert_eq!(m.events.len(), 4);
        assert_eq!(m.counters["qtrace/dropped_events"], 6);
        // The drop counter resets with the drain.
        rec.instant("one");
        let m2 = rec.take_manifest("t2");
        assert_eq!(m2.events.len(), 1);
        assert!(!m2.counters.contains_key("qtrace/dropped_events"));
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Recorder::new();
        rec.enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.add("n", 1);
                        rec.observe("v", 2);
                    }
                    rec.span("worker").finish();
                });
            }
        });
        let m = rec.take_manifest("t");
        assert_eq!(m.counters["n"], 400);
        assert_eq!(m.histograms["v"].count(), 400);
        assert_eq!(m.spans["worker"].count, 4);
    }
}
