//! Zero-dependency run telemetry for the QAOA compilation stack.
//!
//! The crate provides four primitives, all recorded into a thread-safe
//! [`Recorder`]:
//!
//! * **Spans** — scoped wall-clock timers with parent/child nesting.
//!   Nesting is encoded in the span *path* (`"qcompile/compile/route"`);
//!   a child created with [`Span::child`] extends its parent's path.
//!   Stats aggregate per path: call count, total, min and max nanoseconds.
//! * **Counters** — monotonically increasing `u64` sums (SWAPs inserted,
//!   kernel dispatches, routed layers).
//! * **Gauges** — high-water marks (`max` of every observation): peak
//!   live amplitudes, worker threads used.
//! * **Histograms** — log2-bucketed distributions of `u64` observations
//!   (fused-run lengths, per-layer SWAP counts).
//!
//! Draining a recorder yields a [`Manifest`] — a canonical,
//! deterministically ordered JSON document (see [`manifest`]) that the
//! `bench` crate writes next to figure tables (`--manifest <path>`) and
//! that the `regress` binary diffs against committed baselines in CI.
//!
//! # The global recorder
//!
//! Deep call sites (simulator kernels, the router's layer loop) cannot
//! thread a `&Recorder` through their signatures without polluting every
//! public API, so the crate exposes a process-global recorder behind
//! [`global`]. It starts **disabled**: every hot-path hook first checks
//! [`enabled`] (one relaxed atomic load) and records nothing until a
//! driver opts in with [`enable`]. Spans still *measure* while disabled —
//! [`Span::finish`] always returns the elapsed wall time, so callers like
//! `qcompile`'s `PassTrace` get their per-run timings for free — they
//! just skip the shared-state write.
//!
//! ```
//! qtrace::enable();
//! {
//!     let run = qtrace::global().span("demo/run");
//!     let step = run.child("step");
//!     qtrace::global().add("demo/widgets", 3);
//!     qtrace::global().observe("demo/sizes", 17);
//!     step.finish();
//! } // `run` records on drop
//! let manifest = qtrace::take("demo");
//! assert_eq!(manifest.counters["demo/widgets"], 3);
//! assert!(manifest.spans.contains_key("demo/run/step"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod manifest;

pub use manifest::{Histogram, Manifest, ManifestError, SpanStat};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Thread-safe telemetry sink: spans, counters, gauges and histograms.
///
/// All mutating methods take `&self`; the shared state lives behind a
/// `Mutex` (locked once per event — events are per-gate/per-pass, never
/// per-amplitude, so contention is negligible). When the recorder is
/// disabled every recording method is a no-op after one atomic load.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    state: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Recorder {
    /// A new, disabled recorder with no recorded data.
    pub const fn new() -> Recorder {
        Recorder {
            enabled: AtomicBool::new(false),
            state: Mutex::new(State {
                spans: BTreeMap::new(),
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off. Already-recorded data is kept.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Starts a root span at `path`. The span measures wall time from now
    /// until [`Span::finish`] (or drop) and records into this recorder —
    /// unless the recorder was disabled at creation, in which case it
    /// only measures.
    pub fn span(&self, path: &str) -> Span<'_> {
        Span {
            rec: self,
            path: self.is_enabled().then(|| path.to_owned()),
            start: Instant::now(),
        }
    }

    /// Records one completed span occurrence at `path` directly.
    pub fn record_span(&self, path: &str, elapsed: Duration) {
        if !self.is_enabled() {
            return;
        }
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut state = self.state.lock().expect("recorder lock");
        state.spans.entry_or_default(path).merge(ns);
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state.lock().expect("recorder lock");
        let slot = state.counters.entry_or_default(name);
        *slot = slot.saturating_add(delta);
    }

    /// Raises gauge `name` to `value` if `value` exceeds its current max.
    pub fn gauge_max(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state.lock().expect("recorder lock");
        let slot = state.gauges.entry_or_default(name);
        *slot = (*slot).max(value);
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state.lock().expect("recorder lock");
        state.histograms.entry_or_default(name).record(value);
    }

    /// Drains everything recorded so far into a [`Manifest`] named
    /// `name`, leaving the recorder empty (but keeping its enabled state).
    pub fn take_manifest(&self, name: &str) -> Manifest {
        let state = std::mem::take(&mut *self.state.lock().expect("recorder lock"));
        Manifest {
            name: name.to_owned(),
            created_unix_ms: unix_ms(),
            spans: state.spans,
            counters: state.counters,
            gauges: state.gauges,
            histograms: state.histograms,
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

/// `BTreeMap::entry(..).or_default()` without allocating a `String` key
/// when the entry already exists — recording hits existing keys almost
/// always.
trait EntryOrDefault<V: Default> {
    fn entry_or_default(&mut self, key: &str) -> &mut V;
}

impl<V: Default> EntryOrDefault<V> for BTreeMap<String, V> {
    fn entry_or_default(&mut self, key: &str) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key.to_owned(), V::default());
        }
        self.get_mut(key).expect("just inserted")
    }
}

/// A scoped wall-clock timer. Created by [`Recorder::span`] /
/// [`Span::child`]; records its elapsed time into the recorder when
/// finished or dropped (if the recorder was enabled at creation).
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; finish() or let it drop at scope end"]
pub struct Span<'a> {
    rec: &'a Recorder,
    /// Full span path; `None` when the recorder was disabled at creation
    /// (the span then only measures).
    path: Option<String>,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts a child span whose path is `self.path + "/" + name`.
    ///
    /// The child borrows nothing from the parent besides the recorder, so
    /// parent and child may finish in any order; the *path* is what
    /// encodes nesting.
    pub fn child(&self, name: &str) -> Span<'a> {
        Span {
            rec: self.rec,
            path: self.path.as_ref().map(|p| format!("{p}/{name}")),
            start: Instant::now(),
        }
    }

    /// Wall time since the span started, without finishing it.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops the span, records it, and returns the measured wall time
    /// (measured even when the recorder is disabled).
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.record(elapsed);
        elapsed
    }

    fn record(&mut self, elapsed: Duration) {
        if let Some(path) = self.path.take() {
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            let mut state = self.rec.state.lock().expect("recorder lock");
            state.spans.entry_or_default(&path).merge(ns);
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.record(self.start.elapsed());
    }
}

static GLOBAL: Recorder = Recorder::new();

/// The process-global recorder. Starts disabled; see the crate docs.
pub fn global() -> &'static Recorder {
    &GLOBAL
}

/// Whether the global recorder is recording.
pub fn enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Enables the global recorder.
pub fn enable() {
    GLOBAL.enable();
}

/// Disables the global recorder (recorded data is kept until [`take`]).
pub fn disable() {
    GLOBAL.disable();
}

/// Drains the global recorder into a [`Manifest`] named `name`.
pub fn take(name: &str) -> Manifest {
    GLOBAL.take_manifest(name)
}

/// Milliseconds since the Unix epoch (0 if the clock predates it).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_measures_but_records_nothing() {
        let rec = Recorder::new();
        let span = rec.span("a/b");
        let d = span.finish();
        assert!(d >= Duration::ZERO);
        rec.add("c", 5);
        rec.gauge_max("g", 5);
        rec.observe("h", 5);
        rec.enable();
        let m = rec.take_manifest("t");
        assert!(m.spans.is_empty());
        assert!(m.counters.is_empty());
        assert!(m.gauges.is_empty());
        assert!(m.histograms.is_empty());
    }

    #[test]
    fn spans_aggregate_by_path_and_nest_via_child() {
        let rec = Recorder::new();
        rec.enable();
        {
            let root = rec.span("run");
            root.child("pass").finish();
            root.child("pass").finish();
            let pass = root.child("pass");
            pass.child("inner").finish();
            pass.finish();
        }
        let m = rec.take_manifest("t");
        assert_eq!(m.spans["run"].count, 1);
        assert_eq!(m.spans["run/pass"].count, 3);
        assert_eq!(m.spans["run/pass/inner"].count, 1);
        let s = &m.spans["run/pass"];
        assert!(s.min_ns <= s.max_ns && s.total_ns >= s.max_ns);
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let rec = Recorder::new();
        rec.enable();
        rec.add("swaps", 3);
        rec.add("swaps", 4);
        rec.gauge_max("peak", 10);
        rec.gauge_max("peak", 7);
        rec.observe("lens", 0);
        rec.observe("lens", 1);
        rec.observe("lens", 5);
        let m = rec.take_manifest("t");
        assert_eq!(m.counters["swaps"], 7);
        assert_eq!(m.gauges["peak"], 10);
        let h = &m.histograms["lens"];
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 6);
        // 0 and 1 share the first bucket; 5 lands in [4, 8).
        assert_eq!(h.buckets(), vec![(0, 2), (4, 1)]);
    }

    #[test]
    fn take_drains_the_recorder() {
        let rec = Recorder::new();
        rec.enable();
        rec.add("x", 1);
        assert_eq!(rec.take_manifest("a").counters.len(), 1);
        assert!(rec.take_manifest("b").counters.is_empty());
        assert!(rec.is_enabled(), "draining keeps the enabled state");
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Recorder::new();
        rec.enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.add("n", 1);
                        rec.observe("v", 2);
                    }
                    rec.span("worker").finish();
                });
            }
        });
        let m = rec.take_manifest("t");
        assert_eq!(m.counters["n"], 400);
        assert_eq!(m.histograms["v"].count(), 400);
        assert_eq!(m.spans["worker"].count, 4);
    }
}
