//! A minimal JSON reader — the workspace is offline and carries no
//! serde, so manifest and bench-report files are parsed with this ~200
//! line recursive-descent parser instead.
//!
//! Numbers are held as `f64`; every value the stack serializes fits the
//! 2^53 integer-exact range (nanosecond totals up to ~104 days), and
//! [`Json::as_u64`] rejects values that lost integer precision.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (duplicates keep the last value);
    /// canonical serialization relies on deterministic ordering anyway.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses `input`, requiring it to be a single JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an exactly-representable unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&x) && x.fract() == 0.0 {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any file
                            // this crate reads; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".to_owned())
        );
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"name": "x", "xs": [1, 2, {"y": null}], "ok": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("x"));
        let xs = v.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[1].as_u64(), Some(2));
        assert_eq!(xs[2].get("y"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"\\x\"",
            "\"open",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Json::parse("[1, ?]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn u64_conversion_guards_precision() {
        assert_eq!(
            Json::parse("9007199254740992").unwrap().as_u64(),
            Some(1 << 53)
        );
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn handles_unicode_text() {
        assert_eq!(
            Json::parse("\"héllo ∞\"").unwrap().as_str(),
            Some("héllo ∞")
        );
    }
}
