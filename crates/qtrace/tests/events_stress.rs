//! Concurrent-writer stress for the event timeline: many threads record
//! spans at once, and (a) no event is lost or invented — the drained
//! count plus the drop counter conserves the number pushed — and (b) the
//! normalized manifest is byte-identical across runs, regardless of
//! scheduling and thread-ordinal assignment.

use std::time::Duration;

use qtrace::Recorder;

const THREADS: usize = 8;
const SPANS_PER_THREAD: usize = 200;

fn stress_run() -> qtrace::Manifest {
    let rec = Recorder::new();
    rec.enable();
    rec.capture_events(true);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = &rec;
            scope.spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    // Path depends only on the spawn index and iteration,
                    // never on the OS thread identity, so the normalized
                    // event set is identical across runs.
                    let span = rec.span(&format!("stress/worker{t}"));
                    if i % 16 == 0 {
                        rec.instant(&format!("stress/worker{t}/tick"));
                    }
                    span.finish();
                }
            });
        }
    });
    rec.take_manifest("events_stress")
}

#[test]
fn event_count_is_conserved_under_contention() {
    let manifest = stress_run();
    let begins_and_ends = 2 * THREADS * SPANS_PER_THREAD;
    let instants = THREADS * SPANS_PER_THREAD.div_ceil(16);
    let pushed = begins_and_ends + instants;
    let dropped = manifest
        .counters
        .get("qtrace/dropped_events")
        .copied()
        .unwrap_or(0) as usize;
    assert_eq!(
        manifest.events.len() + dropped,
        pushed,
        "events drained + dropped must equal events pushed"
    );
    // The default ring capacity comfortably holds this workload.
    assert_eq!(dropped, 0, "no drops expected at default capacity");
    // Span aggregation saw every completion too.
    let total_spans: u64 = manifest.spans.values().map(|s| s.count).sum();
    assert_eq!(total_spans as usize, THREADS * SPANS_PER_THREAD);
}

#[test]
fn normalized_manifests_are_byte_identical_across_runs() {
    let a = stress_run().normalized().to_json();
    let b = stress_run().normalized().to_json();
    assert_eq!(a, b, "normalization must erase scheduling nondeterminism");
}

#[test]
fn bounded_capacity_counts_every_drop() {
    let rec = Recorder::new();
    rec.enable();
    rec.capture_events(true);
    rec.set_event_capacity(8);
    let pushed = 50 * THREADS;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = &rec;
            scope.spawn(move || {
                for _ in 0..50 {
                    rec.instant(&format!("drop/worker{t}"));
                    std::hint::black_box(Duration::ZERO);
                }
            });
        }
    });
    let manifest = rec.take_manifest("bounded");
    let dropped = manifest
        .counters
        .get("qtrace/dropped_events")
        .copied()
        .unwrap_or(0) as usize;
    assert!(dropped > 0, "tiny capacity must overflow");
    assert_eq!(manifest.events.len() + dropped, pushed);
}
