//! Round-trip and determinism properties of the manifest format, driven
//! through the public `Recorder` API exactly the way instrumented crates
//! use it.

use std::time::Duration;

use qtrace::{Manifest, Recorder};

/// Simulates one "run" of an instrumented stack against `rec`.
fn record_run(rec: &Recorder) {
    let compile = rec.span("qcompile/compile");
    for pass in ["qaim", "route", "lower-to-basis"] {
        let p = compile.child(pass);
        rec.add("qroute/swaps", 7);
        rec.observe("qroute/layer_swaps", 3);
        p.finish();
    }
    rec.gauge_max("qsim/peak_live_amplitudes", 1 << 14);
    rec.record_span("qsim/apply_circuit", Duration::from_micros(250));
    drop(compile);
}

#[test]
fn recorder_to_json_round_trips() {
    let rec = Recorder::new();
    rec.enable();
    record_run(&rec);
    let manifest = rec.take_manifest("roundtrip");

    let json = manifest.to_json();
    let parsed = Manifest::from_json(&json).expect("canonical output parses");
    assert_eq!(parsed, manifest, "serialize → parse is the identity");
    assert_eq!(parsed.to_json(), json, "re-serialization is byte-identical");

    // Spot-check the recorded content made it through.
    assert_eq!(parsed.counters["qroute/swaps"], 21);
    assert_eq!(parsed.spans["qcompile/compile"].count, 1);
    assert_eq!(parsed.spans["qcompile/compile/route"].count, 1);
    assert_eq!(parsed.gauges["qsim/peak_live_amplitudes"], 1 << 14);
    assert_eq!(parsed.histograms["qroute/layer_swaps"].count(), 3);
}

#[test]
fn identical_runs_are_byte_identical_modulo_wall_time() {
    let take = || {
        let rec = Recorder::new();
        rec.enable();
        record_run(&rec);
        rec.take_manifest("determinism")
    };
    let (a, b) = (take(), take());
    assert_eq!(
        a.normalized().to_json(),
        b.normalized().to_json(),
        "identical runs must serialize identically once wall time is stripped"
    );
}

#[test]
fn manifest_files_round_trip_on_disk() {
    let rec = Recorder::new();
    rec.enable();
    record_run(&rec);
    let manifest = rec.take_manifest("disk");

    let dir = std::env::temp_dir().join("qtrace_roundtrip_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("manifest.json");
    manifest.save(&path).unwrap();
    let loaded = Manifest::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded, manifest);
}
