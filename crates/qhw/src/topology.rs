use qgraph::shortest_path::{
    floyd_warshall, floyd_warshall_weighted, DistanceMatrix, WeightedDistanceMatrix,
};
use qgraph::{generators, Graph};

use crate::{Calibration, HardwareProfile};

/// A hardware target: a named qubit-coupling graph.
///
/// Two-qubit gates may only execute between coupled physical qubits; the
/// transpiler inserts SWAPs to satisfy this constraint. The unit-distance
/// matrix ([`Topology::distances`]) drives IC and the reliability-weighted
/// matrix ([`Topology::weighted_distances`]) drives VIC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    name: String,
    graph: Graph,
    coupling: CouplingTable,
}

/// Flat views of the coupling graph for the routing hot loops: an
/// adjacency bitset answering [`Topology::are_coupled`] in one word read,
/// and a CSR neighbor table whose per-qubit rows are sorted ascending —
/// the exact order the graph's `BTreeSet` adjacency iterates, so
/// swapping a hot loop onto [`Topology::neighbors`] cannot change any
/// tie-break. Derived from the graph at construction; topologies are
/// immutable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CouplingTable {
    words: usize,
    bits: Vec<u64>,
    offsets: Vec<usize>,
    neighbors: Vec<usize>,
}

impl CouplingTable {
    fn build(graph: &Graph) -> Self {
        let n = graph.node_count();
        let words = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for u in 0..n {
            for v in graph.neighbors(u) {
                bits[u * words + v / 64] |= 1u64 << (v % 64);
                neighbors.push(v);
            }
            offsets.push(neighbors.len());
        }
        CouplingTable {
            words,
            bits,
            offsets,
            neighbors,
        }
    }
}

impl Topology {
    /// Wraps an arbitrary coupling graph under a display name.
    pub fn from_graph(name: impl Into<String>, graph: Graph) -> Self {
        let coupling = CouplingTable::build(&graph);
        Topology {
            name: name.into(),
            graph,
            coupling,
        }
    }

    /// The IBM 20-qubit *Tokyo* device (Figure 3(a)).
    ///
    /// A 5×4 grid (rows 0–4, 5–9, 10–14, 15–19) with nearest-neighbor links
    /// plus diagonal couplings in alternating grid squares. Reproduces the
    /// paper's profiling anchors: connectivity strength 7 for qubit 0 and
    /// 18 (the maximum) for qubits 7 and 12.
    pub fn ibmq_20_tokyo() -> Self {
        let rows = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (10, 11),
            (11, 12),
            (12, 13),
            (13, 14),
            (15, 16),
            (16, 17),
            (17, 18),
            (18, 19),
        ];
        let cols = [
            (0, 5),
            (5, 10),
            (10, 15),
            (1, 6),
            (6, 11),
            (11, 16),
            (2, 7),
            (7, 12),
            (12, 17),
            (3, 8),
            (8, 13),
            (13, 18),
            (4, 9),
            (9, 14),
            (14, 19),
        ];
        let diagonals = [
            (1, 7),
            (2, 6),
            (3, 9),
            (4, 8),
            (5, 11),
            (6, 10),
            (7, 13),
            (8, 12),
            (11, 17),
            (12, 16),
            (13, 19),
            (14, 18),
        ];
        let graph = Graph::from_edges(20, rows.into_iter().chain(cols).chain(diagonals))
            .expect("static edge list is valid");
        Topology::from_graph("ibmq_20_tokyo".to_owned(), graph)
    }

    /// The IBM 15-qubit *Melbourne* device (`ibmq_16_melbourne`,
    /// Figure 10(a)).
    ///
    /// Two rows (0–6 on top, 14–8 on the bottom) joined by vertical rungs.
    pub fn ibmq_16_melbourne() -> Self {
        let edges = [
            // top row
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            // bottom row
            (14, 13),
            (13, 12),
            (12, 11),
            (11, 10),
            (10, 9),
            (9, 8),
            // rungs
            (0, 14),
            (1, 13),
            (2, 12),
            (3, 11),
            (4, 10),
            (5, 9),
            (6, 8),
            // qubit 7 hangs off the bottom-right corner
            (7, 8),
        ];
        let graph = Graph::from_edges(15, edges).expect("static edge list is valid");
        Topology::from_graph("ibmq_16_melbourne".to_owned(), graph)
    }

    /// The hypothetical `rows × cols` grid device (the paper uses 6×6).
    pub fn grid(rows: usize, cols: usize) -> Self {
        Topology::from_graph(format!("grid_{rows}x{cols}"), generators::grid(rows, cols))
    }

    /// A linear (path) architecture, like Figure 1(d)'s 4-qubit device.
    pub fn linear(n: usize) -> Self {
        Topology::from_graph(format!("linear_{n}"), generators::path(n))
    }

    /// A ring (cyclic) architecture, used by the §VI comparison against the
    /// temporal-planner baseline (8-qubit cyclic hardware).
    pub fn ring(n: usize) -> Self {
        Topology::from_graph(format!("ring_{n}"), generators::cycle(n))
    }

    /// A fully connected architecture (no routing ever needed) — useful as
    /// an experimental control.
    pub fn fully_connected(n: usize) -> Self {
        Topology::from_graph(format!("full_{n}"), generators::complete(n))
    }

    /// A heavy-hexagon lattice of `rows × cols` unit cells — the coupling
    /// family IBM adopted after the paper's devices (Falcon/Hummingbird
    /// generations). Provided for forward-looking experiments on sparser
    /// connectivity.
    ///
    /// The construction places a `(2·rows+1) × (2·cols+1)` grid and keeps
    /// the heavy-hex subset: full horizontal rows on even grid rows, and
    /// vertical bridge qubits on odd rows connecting every other column
    /// (offset alternating per row pair).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn heavy_hex(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "heavy-hex needs at least one cell");
        let grid_cols = 2 * cols + 1;
        let grid_rows = 2 * rows + 1;
        // Index helper on the full grid; not all slots are used.
        let slot = |r: usize, c: usize| r * grid_cols + c;
        let mut used = vec![false; grid_rows * grid_cols];
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for r in (0..grid_rows).step_by(2) {
            for c in 0..grid_cols {
                used[slot(r, c)] = true;
                if c + 1 < grid_cols {
                    edges.push((slot(r, c), slot(r, c + 1)));
                }
            }
        }
        for r in (1..grid_rows).step_by(2) {
            // bridge column offset alternates every other row pair
            let offset = if (r / 2) % 2 == 0 { 0 } else { 2 };
            let mut c = offset;
            while c < grid_cols {
                used[slot(r, c)] = true;
                edges.push((slot(r - 1, c), slot(r, c)));
                edges.push((slot(r, c), slot(r + 1, c)));
                c += 4;
            }
        }
        // Compact the used slots to dense indices.
        let mut dense = vec![usize::MAX; grid_rows * grid_cols];
        let mut next = 0usize;
        for (i, &u) in used.iter().enumerate() {
            if u {
                dense[i] = next;
                next += 1;
            }
        }
        let graph = Graph::from_edges(next, edges.into_iter().map(|(a, b)| (dense[a], dense[b])))
            .expect("heavy-hex construction yields valid edges");
        Topology::from_graph(format!("heavy_hex_{rows}x{cols}"), graph)
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.graph.node_count()
    }

    /// The coupling graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Stable structural fingerprint of this target: the name, qubit
    /// count and full coupling edge list in canonical order. Two
    /// topologies with equal structure hash equal; serving caches use
    /// this as the topology component of a compiled-artifact key (with
    /// full equality verified on hit, so a collision can only cost a
    /// rebuild, never correctness).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.num_qubits().hash(&mut h);
        for e in self.graph.edges() {
            (e.a(), e.b()).hash(&mut h);
        }
        h.finish()
    }

    /// Whether a two-qubit gate may execute directly between `a` and `b`.
    ///
    /// One adjacency-bitset word read — the router asks this for every
    /// gate of every descent step, so it must not cost a set lookup.
    #[inline]
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        let n = self.graph.node_count();
        a != b
            && a < n
            && b < n
            && (self.coupling.bits[a * self.coupling.words + b / 64] >> (b % 64)) & 1 == 1
    }

    /// The coupled neighbors of physical qubit `p`, sorted ascending —
    /// the same order `self.graph().neighbors(p)` iterates, as a flat
    /// slice for the routing hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn neighbors(&self, p: usize) -> &[usize] {
        &self.coupling.neighbors[self.coupling.offsets[p]..self.coupling.offsets[p + 1]]
    }

    /// All-pairs hop distances (computed fresh; callers cache).
    pub fn distances(&self) -> DistanceMatrix {
        floyd_warshall(&self.graph)
    }

    /// All-pairs reliability-weighted distances with edge weight
    /// `1 / success_rate(u, v)` taken from `calibration` (Figure 6(d)).
    ///
    /// # Panics
    ///
    /// Panics if the calibration covers fewer qubits than the topology.
    pub fn weighted_distances(&self, calibration: &Calibration) -> WeightedDistanceMatrix {
        floyd_warshall_weighted(&self.graph, |u, v| 1.0 / calibration.cnot_success(u, v))
    }

    /// The connectivity-strength profile of every physical qubit
    /// (Figure 3(b)); computed with the default two-ring neighborhood.
    pub fn profile(&self) -> HardwareProfile {
        HardwareProfile::new(&self.graph, 2)
    }

    /// Connectivity-strength profile summing rings `1..=depth` — the paper
    /// suggests including third/fourth neighbors for larger architectures.
    pub fn profile_with_depth(&self, depth: usize) -> HardwareProfile {
        HardwareProfile::new(&self.graph, depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokyo_shape() {
        let t = Topology::ibmq_20_tokyo();
        assert_eq!(t.num_qubits(), 20);
        assert_eq!(t.graph().edge_count(), 43);
        assert!(t.graph().is_connected());
        // Paper §IV-A: qubit 0 has first neighbors {1, 5} and second
        // neighbors {2, 6, 7, 10, 11}.
        assert_eq!(
            t.graph().ring(0, 1),
            std::collections::BTreeSet::from([1, 5])
        );
        assert_eq!(
            t.graph().ring(0, 2),
            std::collections::BTreeSet::from([2, 6, 7, 10, 11])
        );
    }

    #[test]
    fn melbourne_shape() {
        let t = Topology::ibmq_16_melbourne();
        assert_eq!(t.num_qubits(), 15);
        assert_eq!(t.graph().edge_count(), 20);
        assert!(t.graph().is_connected());
        // Qubit 7 is the degree-1 pendant.
        assert_eq!(t.graph().degree(7), 1);
        assert!(t.are_coupled(7, 8));
        assert!(t.are_coupled(0, 14));
        assert!(!t.are_coupled(0, 8));
    }

    #[test]
    fn grid_and_families() {
        assert_eq!(Topology::grid(6, 6).num_qubits(), 36);
        assert_eq!(Topology::linear(4).graph().edge_count(), 3);
        assert_eq!(Topology::ring(8).graph().edge_count(), 8);
        assert_eq!(Topology::fully_connected(5).graph().edge_count(), 10);
        assert_eq!(Topology::grid(6, 6).name(), "grid_6x6");
    }

    #[test]
    fn distances_are_cached_consistently() {
        let t = Topology::ibmq_20_tokyo();
        let d = t.distances();
        assert_eq!(d.get(0, 0), Some(0));
        // 0 and 19 sit at opposite corners.
        assert!(d.get(0, 19).unwrap() >= 4);
        for e in t.graph().edges() {
            assert_eq!(d.get(e.a(), e.b()), Some(1));
        }
    }

    #[test]
    fn weighted_distances_use_calibration() {
        let t = Topology::ring(4);
        let cal = Calibration::uniform(&t, 0.02, 0.001, 0.02);
        let w = t.weighted_distances(&cal);
        // Every edge weight is 1/0.98; opposite corners are two hops.
        let one = 1.0 / 0.98;
        assert!((w.get(0, 1).unwrap() - one).abs() < 1e-12);
        assert!((w.get(0, 2).unwrap() - 2.0 * one).abs() < 1e-12);
    }
}

#[cfg(test)]
mod heavy_hex_tests {
    use super::*;

    #[test]
    fn heavy_hex_is_connected_and_sparse() {
        let t = Topology::heavy_hex(2, 2);
        assert!(t.graph().is_connected());
        // Heavy-hex max degree is 3.
        assert!(
            t.graph().max_degree() <= 3,
            "max degree {}",
            t.graph().max_degree()
        );
        assert!(t.num_qubits() >= 15);
    }

    #[test]
    fn heavy_hex_scales() {
        let small = Topology::heavy_hex(1, 1);
        let large = Topology::heavy_hex(3, 3);
        assert!(large.num_qubits() > 2 * small.num_qubits());
        assert!(large.graph().is_connected());
        assert!(large.graph().max_degree() <= 3);
    }

    #[test]
    #[should_panic]
    fn zero_cells_panics() {
        let _ = Topology::heavy_hex(0, 1);
    }
}
