//! Hardware models: qubit coupling topologies, calibration data and the
//! profiling statistics the QAIM/VIC methodologies consume.
//!
//! The paper evaluates on three targets (§V-B): the 20-qubit
//! `ibmq_20_tokyo`, the 15-qubit `ibmq_16_melbourne` and a hypothetical
//! 36-qubit 6×6 grid. All three are provided as [`Topology`] constructors,
//! along with linear/ring/fully-connected layouts used in the worked
//! examples.
//!
//! Calibration data (per-edge CNOT error rates, Figure 10(a)) feeds two
//! consumers:
//!
//! * the **success-probability** metric — the product of per-gate success
//!   rates (§II), and
//! * the **variation-aware distances** of VIC — coupling-graph edge weights
//!   of `1 / success_rate` (Figure 6(d)).
//!
//! # Examples
//!
//! ```
//! use qhw::Topology;
//!
//! let tokyo = Topology::ibmq_20_tokyo();
//! assert_eq!(tokyo.num_qubits(), 20);
//! // The paper's worked example: qubit 0 has connectivity strength 7.
//! assert_eq!(tokyo.profile().connectivity_strength(0), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;
mod context;
pub mod fault;
mod profile;
mod topology;

pub use calibration::{Calibration, CalibrationError, MAX_ERROR, MIN_ERROR};
pub use context::HardwareContext;
pub use profile::HardwareProfile;
pub use topology::Topology;
