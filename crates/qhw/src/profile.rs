use qgraph::Graph;

/// The hardware profile of §IV-A: per-qubit *connectivity strength*.
///
/// The connectivity strength of a physical qubit is the number of its
/// first neighbors plus its second neighbors (optionally extended to
/// deeper rings for larger devices). Qubits with high strength sit in
/// well-connected neighborhoods, so logical qubits mapped there "are less
/// likely to move during compilation".
///
/// Profiling is done once per device and the result reused by every QAIM
/// invocation, exactly as the paper prescribes.
///
/// # Examples
///
/// ```
/// use qhw::Topology;
///
/// let profile = Topology::ibmq_20_tokyo().profile();
/// // Qubits 7 and 12 are the strongest on Tokyo (strength 18).
/// assert_eq!(profile.strongest(), 7);
/// assert_eq!(profile.connectivity_strength(12), 18);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareProfile {
    strength: Vec<usize>,
    ring_depth: usize,
}

impl HardwareProfile {
    /// Profiles `graph`, summing ring sizes `1..=ring_depth`.
    ///
    /// `ring_depth = 2` reproduces the paper's first-plus-second-neighbor
    /// definition.
    ///
    /// # Panics
    ///
    /// Panics if `ring_depth == 0`.
    pub fn new(graph: &Graph, ring_depth: usize) -> Self {
        assert!(ring_depth >= 1, "ring depth must be at least 1");
        let strength = graph
            .nodes()
            .map(|q| (1..=ring_depth).map(|k| graph.ring(q, k).len()).sum())
            .collect();
        HardwareProfile {
            strength,
            ring_depth,
        }
    }

    /// The connectivity strength of physical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn connectivity_strength(&self, q: usize) -> usize {
        self.strength[q]
    }

    /// The ring depth the profile was computed with.
    pub fn ring_depth(&self) -> usize {
        self.ring_depth
    }

    /// Number of profiled qubits.
    pub fn num_qubits(&self) -> usize {
        self.strength.len()
    }

    /// The qubit with maximum connectivity strength (lowest index on
    /// ties — this resolves the paper's "picked randomly" tie-break
    /// deterministically).
    ///
    /// # Panics
    ///
    /// Panics on an empty profile.
    pub fn strongest(&self) -> usize {
        self.strength
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(q, _)| q)
            .expect("profile is non-empty")
    }

    /// Qubit indices sorted by descending strength (ascending index on
    /// ties).
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.strength.len()).collect();
        order.sort_by(|&a, &b| self.strength[b].cmp(&self.strength[a]).then(a.cmp(&b)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn tokyo_profile_anchors_from_paper() {
        let p = Topology::ibmq_20_tokyo().profile();
        // §IV-A worked example: strength of qubit 0 is 7 (= 2 + 5).
        assert_eq!(p.connectivity_strength(0), 7);
        // Example 1: qubits 7 and 12 both have the maximal strength 18.
        assert_eq!(p.connectivity_strength(7), 18);
        assert_eq!(p.connectivity_strength(12), 18);
        assert_eq!(p.strongest(), 7); // deterministic tie-break: lowest index
        let max = (0..20).map(|q| p.connectivity_strength(q)).max().unwrap();
        assert_eq!(max, 18);
    }

    #[test]
    fn ranked_is_descending() {
        let p = Topology::ibmq_20_tokyo().profile();
        let r = p.ranked();
        assert_eq!(r.len(), 20);
        assert_eq!(r[0], 7);
        assert_eq!(r[1], 12);
        for w in r.windows(2) {
            assert!(p.connectivity_strength(w[0]) >= p.connectivity_strength(w[1]));
        }
    }

    #[test]
    fn ring_depth_one_is_degree() {
        let t = Topology::ring(6);
        let p = t.profile_with_depth(1);
        for q in 0..6 {
            assert_eq!(p.connectivity_strength(q), 2);
        }
        assert_eq!(p.ring_depth(), 1);
    }

    #[test]
    fn deeper_rings_grow_strength() {
        let t = Topology::grid(6, 6);
        let p2 = t.profile();
        let p3 = t.profile_with_depth(3);
        for q in 0..36 {
            assert!(p3.connectivity_strength(q) >= p2.connectivity_strength(q));
        }
    }

    #[test]
    fn linear_profile_shape() {
        // On a path, interior qubits have strength 4 (2 first + 2 second),
        // the ends 2 (1 + 1), second-from-end 3 (2 + 1).
        let p = Topology::linear(6).profile();
        assert_eq!(p.connectivity_strength(0), 2);
        assert_eq!(p.connectivity_strength(1), 3);
        assert_eq!(p.connectivity_strength(2), 4);
        assert_eq!(p.num_qubits(), 6);
    }

    #[test]
    #[should_panic]
    fn zero_ring_depth_panics() {
        let t = Topology::linear(3);
        let _ = HardwareProfile::new(t.graph(), 0);
    }
}
