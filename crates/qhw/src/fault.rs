//! Deterministic fault injection for chaos-testing the compile stack.
//!
//! A production compile service consumes calibration feeds and topology
//! descriptions it does not control: a NaN error rate, a dead link, a
//! missing table entry or a decommissioned coupling must surface as a
//! degraded-but-verified compilation or a structured error — never a
//! panic. This module manufactures exactly those inputs, reproducibly
//! from a `u64` seed, so the `chaos` test campaign and the CI `chaos`
//! gate replay identical fault sequences on every run.
//!
//! Two injection surfaces:
//!
//! * [`FaultInjector::corrupt_calibration`] — returns a copy of a
//!   calibration with one fault class applied (NaN/∞/negative/oversized
//!   rates, dead links, missing entries, heavy drift). Corrupted tables
//!   intentionally bypass the sanitizing constructors; they model data
//!   as it arrives off the wire, and [`Calibration::validate`] is the
//!   stack's defense.
//! * [`FaultInjector::degrade_topology`] — returns a copy of a topology
//!   with couplings dropped, a qubit isolated, or the device split into
//!   disconnected components.
//!
//! Every injection is recorded as an [`InjectedFault`] for assertions
//! and reporting.

use std::collections::BTreeMap;

use qgraph::Edge;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Calibration, Topology, MAX_ERROR};

/// A class of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A CNOT error rate becomes NaN (a feed gap propagated as `0/0`).
    NanRate,
    /// A CNOT error rate becomes `+∞`.
    InfiniteRate,
    /// A CNOT error rate becomes negative.
    NegativeRate,
    /// A CNOT error rate far above [`MAX_ERROR`] (but finite).
    OversizedRate,
    /// A link reports error rate `1.0`: success 0, so the `1 / success`
    /// reliability weight would be infinite.
    DeadLink,
    /// A coupling's table entry disappears entirely.
    MissingEntry,
    /// Heavy log-normal drift — the table stays *valid* but stale and
    /// badly skewed (the §VII day-to-day variation, amplified).
    HeavyDrift,
    /// One coupling is removed from the topology (still connected or
    /// not, depending on the edge).
    DroppedCoupling,
    /// Every coupling of one qubit is removed, disconnecting it.
    IsolatedQubit,
    /// The device is cut into two components along a node bipartition.
    SplitComponent,
}

impl FaultKind {
    /// The calibration-corruption classes, in campaign order.
    pub const CALIBRATION: [FaultKind; 7] = [
        FaultKind::NanRate,
        FaultKind::InfiniteRate,
        FaultKind::NegativeRate,
        FaultKind::OversizedRate,
        FaultKind::DeadLink,
        FaultKind::MissingEntry,
        FaultKind::HeavyDrift,
    ];

    /// The topology-degradation classes, in campaign order.
    pub const TOPOLOGY: [FaultKind; 3] = [
        FaultKind::DroppedCoupling,
        FaultKind::IsolatedQubit,
        FaultKind::SplitComponent,
    ];

    /// A short stable label for reports and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::NanRate => "nan-rate",
            FaultKind::InfiniteRate => "infinite-rate",
            FaultKind::NegativeRate => "negative-rate",
            FaultKind::OversizedRate => "oversized-rate",
            FaultKind::DeadLink => "dead-link",
            FaultKind::MissingEntry => "missing-entry",
            FaultKind::HeavyDrift => "heavy-drift",
            FaultKind::DroppedCoupling => "dropped-coupling",
            FaultKind::IsolatedQubit => "isolated-qubit",
            FaultKind::SplitComponent => "split-component",
        }
    }
}

/// One recorded injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// The coupling it hit, for per-edge faults.
    pub edge: Option<(usize, usize)>,
    /// The qubit it hit, for per-qubit faults.
    pub qubit: Option<usize>,
}

/// A seeded source of corrupted calibrations and degraded topologies.
///
/// Identical seeds produce identical fault sequences, independent of
/// platform or thread schedule — the chaos campaign's reproducibility
/// rests on this.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    log: Vec<InjectedFault>,
}

impl FaultInjector {
    /// An injector replaying the fault stream of `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
            log: Vec::new(),
        }
    }

    /// Every fault injected so far, in order.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    fn pick_edge(&mut self, topology: &Topology) -> Option<Edge> {
        let edges: Vec<Edge> = topology.graph().edges().collect();
        edges.choose(&mut self.rng).copied()
    }

    /// Returns a copy of `calibration` with one `kind` fault applied to a
    /// randomly chosen coupling of `topology` (the whole table for
    /// [`FaultKind::HeavyDrift`]).
    ///
    /// The result deliberately violates the invariants the sanitizing
    /// constructors maintain; run [`Calibration::validate`] to observe
    /// the corruption. [`FaultKind::HeavyDrift`] is the exception: it
    /// yields a *valid* but badly degraded table.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not one of [`FaultKind::CALIBRATION`].
    pub fn corrupt_calibration(
        &mut self,
        topology: &Topology,
        calibration: &Calibration,
        kind: FaultKind,
    ) -> Calibration {
        let mut map: BTreeMap<Edge, f64> = calibration.cnot_errors().collect();
        let n = calibration.num_qubits();
        let single: Vec<f64> = (0..n).map(|q| calibration.single_qubit_error(q)).collect();
        let readout: Vec<f64> = (0..n).map(|q| calibration.readout_error(q)).collect();
        let edge = self.pick_edge(topology);
        let hit = edge.map(|e| (e.a(), e.b()));
        match kind {
            FaultKind::NanRate => {
                if let Some(e) = edge {
                    map.insert(e, f64::NAN);
                }
            }
            FaultKind::InfiniteRate => {
                if let Some(e) = edge {
                    map.insert(e, f64::INFINITY);
                }
            }
            FaultKind::NegativeRate => {
                if let Some(e) = edge {
                    map.insert(e, -0.3);
                }
            }
            FaultKind::OversizedRate => {
                if let Some(e) = edge {
                    map.insert(e, 40.0);
                }
            }
            FaultKind::DeadLink => {
                if let Some(e) = edge {
                    map.insert(e, 1.0);
                }
            }
            FaultKind::MissingEntry => {
                if let Some(e) = edge {
                    map.remove(&e);
                }
            }
            FaultKind::HeavyDrift => {
                // Valid-but-degraded: multiply every rate by a log-normal
                // factor with a large sigma, clamped into range by going
                // through the sanitizing constructor path (min with
                // MAX_ERROR keeps the table valid).
                let sigma = 1.2;
                let mut lognormal = |e: f64| -> f64 {
                    let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = self.rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    (e * (sigma * z).exp()).clamp(crate::MIN_ERROR, MAX_ERROR)
                };
                for v in map.values_mut() {
                    *v = lognormal(*v);
                }
            }
            other => panic!("{} is not a calibration fault", other.label()),
        }
        self.log.push(InjectedFault {
            kind,
            edge: if kind == FaultKind::HeavyDrift {
                None
            } else {
                hit
            },
            qubit: None,
        });
        Calibration::from_raw_parts(map, single, readout)
    }

    /// Returns a copy of `topology` with one `kind` degradation applied.
    ///
    /// The result may be disconnected ([`FaultKind::IsolatedQubit`] and
    /// [`FaultKind::SplitComponent`] guarantee it on devices with ≥ 2
    /// qubits); the compile stack must answer with a structured
    /// `DisconnectedTopology` error rather than unreachable-distance
    /// artifacts.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not one of [`FaultKind::TOPOLOGY`].
    pub fn degrade_topology(&mut self, topology: &Topology, kind: FaultKind) -> Topology {
        let n = topology.num_qubits();
        let mut graph = topology.graph().clone();
        let mut fault = InjectedFault {
            kind,
            edge: None,
            qubit: None,
        };
        match kind {
            FaultKind::DroppedCoupling => {
                if let Some(e) = self.pick_edge(topology) {
                    graph.remove_edge(e.a(), e.b());
                    fault.edge = Some((e.a(), e.b()));
                }
            }
            FaultKind::IsolatedQubit => {
                if n > 0 {
                    let q = self.rng.gen_range(0..n);
                    let neighbors: Vec<usize> = graph.neighbors(q).collect();
                    for v in neighbors {
                        graph.remove_edge(q, v);
                    }
                    fault.qubit = Some(q);
                }
            }
            FaultKind::SplitComponent => {
                // Cut along a random bipartition point: drop every edge
                // crossing {0..k} × {k..n}.
                if n >= 2 {
                    let k = self.rng.gen_range(1..n);
                    let crossing: Vec<Edge> = graph
                        .edges()
                        .filter(|e| (e.a() < k) != (e.b() < k))
                        .collect();
                    for e in crossing {
                        graph.remove_edge(e.a(), e.b());
                    }
                    fault.qubit = Some(k);
                }
            }
            other => panic!("{} is not a topology fault", other.label()),
        }
        self.log.push(fault);
        Topology::from_graph(format!("{}+{}", topology.name(), kind.label()), graph)
    }
}

/// A service-level fault applied to one compile job by the serving
/// layer's worker (the third injection surface, targeting the *service*
/// rather than the device: worker crashes and wedged compiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// The worker panics mid-compile; the service must contain it,
    /// attribute it, and eventually quarantine the offending spec.
    WorkerPanic,
    /// The compile stalls for this many logical ticks before finishing;
    /// a deadline-bearing request must observe cancellation instead of
    /// wedging the worker.
    SlowCompile {
        /// Stall length in the service's logical clock ticks.
        ticks: u64,
    },
}

impl ServiceFault {
    /// A short stable label for reports and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            ServiceFault::WorkerPanic => "worker-panic",
            ServiceFault::SlowCompile { .. } => "slow-compile",
        }
    }
}

/// How to corrupt a spilled artifact file on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillCorruption {
    /// Truncate the file to a seeded fraction of its length — the torn
    /// write of a crash mid-spill.
    Truncate,
    /// Flip one seeded bit in place — silent media corruption.
    BitFlip,
}

/// A precomputed, seeded schedule of [`ServiceFault`]s, one slot per
/// admitted compile job. The serving layer consults
/// [`ServiceFaultPlane::fault_for`] with the job's admission sequence
/// number; because the schedule is fixed at construction, the injected
/// fault stream is a pure function of `(seed, rates)` — independent of
/// worker count or thread schedule, which is what lets a chaos campaign
/// gate its counters byte-exactly in CI.
#[derive(Debug, Clone, Default)]
pub struct ServiceFaultPlane {
    schedule: Vec<Option<ServiceFault>>,
}

impl ServiceFaultPlane {
    /// Plans `jobs` slots from `seed`: each slot independently panics
    /// with probability `panic_rate`, else stalls `stall_ticks` with
    /// probability `stall_rate`, else is fault-free. Jobs beyond the
    /// planned horizon are fault-free.
    pub fn plan(
        seed: u64,
        jobs: usize,
        panic_rate: f64,
        stall_rate: f64,
        stall_ticks: u64,
    ) -> ServiceFaultPlane {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = (0..jobs)
            .map(|_| {
                let roll: f64 = rng.gen_range(0.0..1.0);
                if roll < panic_rate {
                    Some(ServiceFault::WorkerPanic)
                } else if roll < panic_rate + stall_rate {
                    Some(ServiceFault::SlowCompile { ticks: stall_ticks })
                } else {
                    None
                }
            })
            .collect();
        ServiceFaultPlane { schedule }
    }

    /// The fault scheduled for the job with admission sequence number
    /// `job_seq`, if any.
    pub fn fault_for(&self, job_seq: u64) -> Option<ServiceFault> {
        usize::try_from(job_seq)
            .ok()
            .and_then(|i| self.schedule.get(i).copied())
            .flatten()
    }

    /// Number of planned slots.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the plane schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Seeded request indices (sorted, distinct) at which a campaign
    /// fires calibration reloads — the reload-storm schedule.
    pub fn reload_points(seed: u64, total_requests: usize, storms: usize) -> Vec<usize> {
        if total_requests == 0 || storms == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e1f_5704_a11e_57ed);
        let mut points: Vec<usize> = (0..total_requests).collect();
        points.shuffle(&mut rng);
        points.truncate(storms.min(total_requests));
        points.sort_unstable();
        points
    }
}

impl FaultInjector {
    /// Corrupts the file at `path` in place with one `kind` fault, using
    /// the injector's seeded RNG to pick the truncation point or the
    /// flipped bit. Returns the byte offset affected. A checksummed
    /// spill store must detect either corruption and skip the file.
    pub fn corrupt_spill_file(
        &mut self,
        path: &std::path::Path,
        kind: SpillCorruption,
    ) -> std::io::Result<u64> {
        let mut bytes = std::fs::read(path)?;
        if bytes.is_empty() {
            return Ok(0);
        }
        let offset = match kind {
            SpillCorruption::Truncate => {
                let keep = self.rng.gen_range(0..bytes.len());
                bytes.truncate(keep);
                keep as u64
            }
            SpillCorruption::BitFlip => {
                let at = self.rng.gen_range(0..bytes.len());
                let bit = self.rng.gen_range(0..8u8);
                bytes[at] ^= 1 << bit;
                at as u64
            }
        };
        std::fs::write(path, bytes)?;
        Ok(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CalibrationError;

    fn base() -> (Topology, Calibration) {
        let topo = Topology::ibmq_16_melbourne();
        let cal = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
        (topo, cal)
    }

    #[test]
    fn injection_is_reproducible_from_the_seed() {
        let (topo, cal) = base();
        for kind in FaultKind::CALIBRATION {
            let a = FaultInjector::new(7).corrupt_calibration(&topo, &cal, kind);
            let b = FaultInjector::new(7).corrupt_calibration(&topo, &cal, kind);
            // NaN != NaN, so compare via the validation verdict + the
            // non-NaN entries.
            assert_eq!(
                a.validate(&topo).is_ok(),
                b.validate(&topo).is_ok(),
                "{}",
                kind.label()
            );
            let pairs_a: Vec<(Edge, bool)> =
                a.cnot_errors().map(|(e, r)| (e, r.is_nan())).collect();
            let pairs_b: Vec<(Edge, bool)> =
                b.cnot_errors().map(|(e, r)| (e, r.is_nan())).collect();
            assert_eq!(pairs_a, pairs_b);
        }
        for kind in FaultKind::TOPOLOGY {
            let a = FaultInjector::new(9).degrade_topology(&topo, kind);
            let b = FaultInjector::new(9).degrade_topology(&topo, kind);
            assert_eq!(a, b, "{}", kind.label());
        }
    }

    #[test]
    fn corruption_classes_fail_validation_as_expected() {
        let (topo, cal) = base();
        for kind in FaultKind::CALIBRATION {
            let mut inj = FaultInjector::new(11);
            let bad = inj.corrupt_calibration(&topo, &cal, kind);
            let verdict = bad.validate(&topo);
            match kind {
                FaultKind::HeavyDrift => assert!(verdict.is_ok(), "drift stays valid"),
                FaultKind::NanRate | FaultKind::InfiniteRate => assert!(matches!(
                    verdict,
                    Err(CalibrationError::NonFiniteCnotRate { .. })
                )),
                FaultKind::NegativeRate | FaultKind::OversizedRate | FaultKind::DeadLink => {
                    assert!(matches!(
                        verdict,
                        Err(CalibrationError::CnotRateOutOfRange { .. })
                    ))
                }
                FaultKind::MissingEntry => assert!(matches!(
                    verdict,
                    Err(CalibrationError::MissingCoupling { .. })
                )),
                _ => unreachable!(),
            }
            assert_eq!(inj.log().len(), 1);
            assert_eq!(inj.log()[0].kind, kind);
        }
    }

    #[test]
    fn topology_degradations_disconnect_when_promised() {
        let (topo, _) = base();
        let mut inj = FaultInjector::new(3);
        let iso = inj.degrade_topology(&topo, FaultKind::IsolatedQubit);
        assert!(!iso.graph().is_connected());
        assert_eq!(iso.num_qubits(), topo.num_qubits());
        let split = inj.degrade_topology(&topo, FaultKind::SplitComponent);
        assert!(!split.graph().is_connected());
        assert!(split.graph().edge_count() < topo.graph().edge_count());
        let dropped = inj.degrade_topology(&topo, FaultKind::DroppedCoupling);
        assert_eq!(dropped.graph().edge_count(), topo.graph().edge_count() - 1);
        assert!(dropped.name().contains("dropped-coupling"));
    }

    #[test]
    #[should_panic]
    fn topology_fault_on_calibration_surface_panics() {
        let (topo, cal) = base();
        let _ = FaultInjector::new(0).corrupt_calibration(&topo, &cal, FaultKind::DroppedCoupling);
    }

    #[test]
    fn service_fault_plane_is_a_pure_function_of_its_seed() {
        let a = ServiceFaultPlane::plan(21, 200, 0.1, 0.2, 7);
        let b = ServiceFaultPlane::plan(21, 200, 0.1, 0.2, 7);
        assert_eq!(a.len(), 200);
        assert!(!a.is_empty());
        let faults_a: Vec<_> = (0..200).map(|i| a.fault_for(i)).collect();
        let faults_b: Vec<_> = (0..200).map(|i| b.fault_for(i)).collect();
        assert_eq!(faults_a, faults_b);
        // Both classes occur at these rates, stalls carry the ticks.
        assert!(faults_a.contains(&Some(ServiceFault::WorkerPanic)));
        assert!(faults_a.contains(&Some(ServiceFault::SlowCompile { ticks: 7 })));
        // Beyond the horizon: fault-free.
        assert_eq!(a.fault_for(10_000), None);
        assert_eq!(ServiceFault::WorkerPanic.label(), "worker-panic");
        assert_eq!(
            ServiceFault::SlowCompile { ticks: 1 }.label(),
            "slow-compile"
        );
    }

    #[test]
    fn reload_points_are_sorted_distinct_and_seeded() {
        let a = ServiceFaultPlane::reload_points(5, 100, 8);
        let b = ServiceFaultPlane::reload_points(5, 100, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&p| p < 100));
        assert!(ServiceFaultPlane::reload_points(5, 0, 8).is_empty());
        assert_eq!(ServiceFaultPlane::reload_points(5, 3, 10).len(), 3);
    }

    #[test]
    fn spill_corruption_is_detectable_and_seeded() {
        let dir = std::env::temp_dir().join(format!("qhw-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.bin");
        let payload: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();

        std::fs::write(&path, &payload).unwrap();
        let off = FaultInjector::new(13)
            .corrupt_spill_file(&path, SpillCorruption::Truncate)
            .unwrap();
        let truncated = std::fs::read(&path).unwrap();
        assert_eq!(truncated.len() as u64, off);
        assert!(truncated.len() < payload.len());

        std::fs::write(&path, &payload).unwrap();
        let off = FaultInjector::new(13)
            .corrupt_spill_file(&path, SpillCorruption::BitFlip)
            .unwrap();
        let flipped = std::fs::read(&path).unwrap();
        assert_eq!(flipped.len(), payload.len());
        assert_ne!(flipped, payload);
        assert_ne!(flipped[off as usize], payload[off as usize]);

        std::fs::remove_dir_all(&dir).ok();
    }
}
