//! The shared, immutable hardware context threaded through the compile
//! stack.
//!
//! The paper notes the Floyd–Warshall distance matrix is "measured once
//! ... and accessed from memory during QAIM". [`HardwareContext`] is that
//! discipline made structural: it bundles a [`Topology`], its optional
//! [`Calibration`], and every derived artifact the mapping, layer-forming
//! and routing passes consume — the unit-hop distance matrix, the
//! reliability-weighted distance matrix (when calibrated) and the
//! connectivity-strength profile — each computed exactly once at
//! construction and shared from then on (the matrices behind [`Arc`], so
//! metrics and parallel batch workers clone pointers, not `O(n^2)` data).

use std::sync::Arc;

use qgraph::shortest_path::{DistanceMatrix, WeightedDistanceMatrix};

use crate::{Calibration, CalibrationError, HardwareProfile, Topology};

/// Immutable bundle of a hardware target and its derived compile-time
/// artifacts, built once per `(topology, calibration)` pair.
///
/// Construction runs Floyd–Warshall once for the hop-distance matrix and
/// (when calibrated) once more for the reliability-weighted matrix —
/// `qgraph::shortest_path::apsp_invocations` observes exactly these runs,
/// and every later consumer reads the cached matrices.
///
/// # Examples
///
/// ```
/// use qhw::{HardwareContext, Topology};
///
/// let ctx = HardwareContext::new(Topology::ibmq_20_tokyo());
/// assert_eq!(ctx.distances().get(0, 0), Some(0));
/// assert_eq!(ctx.profile().connectivity_strength(0), 7);
/// assert!(ctx.weighted_distances().is_none()); // no calibration supplied
/// ```
#[derive(Debug, Clone)]
pub struct HardwareContext {
    topology: Topology,
    calibration: Option<Calibration>,
    calibration_issue: Option<CalibrationError>,
    distances: Arc<DistanceMatrix>,
    weighted: Option<Arc<WeightedDistanceMatrix>>,
    profile: HardwareProfile,
    components: usize,
}

impl HardwareContext {
    /// Builds the context for an uncalibrated target: hop distances and
    /// the connectivity profile are computed here; no weighted matrix.
    pub fn new(topology: Topology) -> Self {
        let distances = Arc::new(topology.distances());
        let profile = topology.profile();
        let components = topology.graph().connected_components().len();
        HardwareContext {
            topology,
            calibration: None,
            calibration_issue: None,
            distances,
            weighted: None,
            profile,
            components,
        }
    }

    /// Builds the context for a calibrated target: additionally computes
    /// the reliability-weighted distance matrix of Figure 6(d).
    ///
    /// The calibration is validated against the topology first. An
    /// unusable table (NaN/out-of-range rates, missing or unknown
    /// couplings — see [`Calibration::validate`]) is **kept but
    /// quarantined**: no weighted matrix is built (so variation-aware
    /// consumers see the target as uncalibrated) and the verdict is
    /// available from [`HardwareContext::calibration_issue`]. This is
    /// what lets the compile pipeline degrade VIC → IC instead of
    /// poisoning reliability weights or panicking.
    pub fn with_calibration(topology: Topology, calibration: Calibration) -> Self {
        let distances = Arc::new(topology.distances());
        let profile = topology.profile();
        let components = topology.graph().connected_components().len();
        let calibration_issue = calibration.validate(&topology).err();
        let weighted = if calibration_issue.is_none() {
            Some(Arc::new(topology.weighted_distances(&calibration)))
        } else {
            None
        };
        HardwareContext {
            topology,
            calibration: Some(calibration),
            calibration_issue,
            distances,
            weighted,
            profile,
            components,
        }
    }

    /// Builds from an optional calibration — the shape pipeline code sees.
    pub fn from_parts(topology: Topology, calibration: Option<Calibration>) -> Self {
        match calibration {
            Some(cal) => HardwareContext::with_calibration(topology, cal),
            None => HardwareContext::new(topology),
        }
    }

    /// The hardware target.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration data, when this context was built with any — even
    /// an unusable table (check [`HardwareContext::calibration_issue`]).
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Why the supplied calibration is unusable, if it failed
    /// [`Calibration::validate`] at construction.
    pub fn calibration_issue(&self) -> Option<&CalibrationError> {
        self.calibration_issue.as_ref()
    }

    /// The calibration data only when it validated against the topology;
    /// reliability-weighted consumers should read through this.
    pub fn usable_calibration(&self) -> Option<&Calibration> {
        if self.calibration_issue.is_none() {
            self.calibration.as_ref()
        } else {
            None
        }
    }

    /// Whether the coupling graph is a single connected component
    /// (cached at construction).
    pub fn is_connected(&self) -> bool {
        self.components <= 1
    }

    /// Number of connected components of the coupling graph (cached at
    /// construction).
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// The cached all-pairs hop-distance matrix (Figure 6(c)).
    pub fn distances(&self) -> &Arc<DistanceMatrix> {
        &self.distances
    }

    /// The cached reliability-weighted distance matrix (Figure 6(d));
    /// `None` without calibration.
    pub fn weighted_distances(&self) -> Option<&Arc<WeightedDistanceMatrix>> {
        self.weighted.as_ref()
    }

    /// The cached connectivity-strength profile (Figure 3(b)).
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// Number of physical qubits (shorthand for
    /// `self.topology().num_qubits()`).
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::shortest_path::apsp_invocations;

    #[test]
    fn uncalibrated_context_caches_hops_and_profile() {
        let topo = Topology::ibmq_20_tokyo();
        let ctx = HardwareContext::new(topo.clone());
        assert_eq!(*ctx.distances().as_ref(), topo.distances());
        assert!(ctx.weighted_distances().is_none());
        assert!(ctx.calibration().is_none());
        assert_eq!(ctx.num_qubits(), 20);
        assert_eq!(
            ctx.profile().connectivity_strength(7),
            topo.profile().connectivity_strength(7)
        );
    }

    #[test]
    fn calibrated_context_caches_weighted_matrix() {
        let (topo, cal) = Calibration::melbourne_2020_04_08();
        let ctx = HardwareContext::with_calibration(topo.clone(), cal.clone());
        let fresh = topo.weighted_distances(&cal);
        let cached = ctx.weighted_distances().expect("calibrated context");
        for u in 0..topo.num_qubits() {
            for v in 0..topo.num_qubits() {
                assert_eq!(cached.get(u, v), fresh.get(u, v));
            }
        }
    }

    #[test]
    fn construction_runs_apsp_a_bounded_number_of_times() {
        // Uncalibrated: exactly one Floyd–Warshall run; calibrated: two.
        // (The counter is process-global, so this test measures deltas and
        // relies on nothing else racing it — `cargo test` runs the other
        // tests in this binary concurrently, hence the dedicated deltas
        // around tight regions with freshly built inputs.)
        let topo = Topology::linear(5);
        let before = apsp_invocations();
        let ctx = HardwareContext::new(topo);
        let mid = apsp_invocations();
        assert!(mid - before >= 1);
        // Consuming the cached artifacts must not trigger recomputation.
        let _ = ctx.distances().get(0, 4);
        let _ = ctx.profile().connectivity_strength(0);
        let _d2 = Arc::clone(ctx.distances());
        assert_eq!(apsp_invocations(), mid);
    }

    #[test]
    fn clone_shares_matrices() {
        let ctx = HardwareContext::new(Topology::grid(4, 4));
        let before = apsp_invocations();
        let clone = ctx.clone();
        assert_eq!(apsp_invocations(), before);
        assert!(Arc::ptr_eq(ctx.distances(), clone.distances()));
    }

    #[test]
    fn corrupt_calibration_is_quarantined_not_fatal() {
        use crate::fault::{FaultInjector, FaultKind};
        let topo = Topology::ibmq_16_melbourne();
        let good = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
        for kind in [
            FaultKind::NanRate,
            FaultKind::DeadLink,
            FaultKind::MissingEntry,
        ] {
            let bad = FaultInjector::new(5).corrupt_calibration(&topo, &good, kind);
            // Previously this construction panicked (missing entry) or
            // poisoned the weighted matrix (NaN); now it quarantines.
            let ctx = HardwareContext::with_calibration(topo.clone(), bad);
            assert!(ctx.calibration().is_some(), "{}", kind.label());
            assert!(ctx.usable_calibration().is_none());
            assert!(ctx.calibration_issue().is_some());
            assert!(ctx.weighted_distances().is_none());
        }
        // A valid table keeps full service.
        let ctx = HardwareContext::with_calibration(topo, good);
        assert!(ctx.calibration_issue().is_none());
        assert!(ctx.usable_calibration().is_some());
        assert!(ctx.weighted_distances().is_some());
    }

    #[test]
    fn connectivity_is_cached_and_exposed() {
        let connected = HardwareContext::new(Topology::ring(6));
        assert!(connected.is_connected());
        assert_eq!(connected.component_count(), 1);

        let mut inj = crate::fault::FaultInjector::new(2);
        let split =
            inj.degrade_topology(&Topology::ring(6), crate::fault::FaultKind::SplitComponent);
        let ctx = HardwareContext::new(split);
        assert!(!ctx.is_connected());
        assert!(ctx.component_count() >= 2);
    }

    #[test]
    fn from_parts_matches_dedicated_constructors() {
        let topo = Topology::ring(6);
        let cal = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
        let a = HardwareContext::from_parts(topo.clone(), Some(cal));
        assert!(a.weighted_distances().is_some());
        let b = HardwareContext::from_parts(topo, None);
        assert!(b.weighted_distances().is_none());
    }
}
