//! The shared, immutable hardware context threaded through the compile
//! stack.
//!
//! The paper notes the Floyd–Warshall distance matrix is "measured once
//! ... and accessed from memory during QAIM". [`HardwareContext`] is that
//! discipline made structural: it bundles a [`Topology`], its optional
//! [`Calibration`], and every derived artifact the mapping, layer-forming
//! and routing passes consume — the unit-hop distance matrix, the
//! reliability-weighted distance matrix (when calibrated) and the
//! connectivity-strength profile — each computed exactly once at
//! construction and shared from then on (the matrices behind [`Arc`], so
//! metrics and parallel batch workers clone pointers, not `O(n^2)` data).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use qgraph::shortest_path::{DistanceMatrix, WeightedDistanceMatrix};

use crate::{Calibration, CalibrationError, HardwareProfile, Topology};

/// Immutable bundle of a hardware target and its derived compile-time
/// artifacts, built once per `(topology, calibration)` pair.
///
/// Construction runs Floyd–Warshall once for the hop-distance matrix and
/// (when calibrated) once more for the reliability-weighted matrix —
/// `qgraph::shortest_path::apsp_invocations` observes exactly these runs,
/// and every later consumer reads the cached matrices.
///
/// # Examples
///
/// ```
/// use qhw::{HardwareContext, Topology};
///
/// let ctx = HardwareContext::new(Topology::ibmq_20_tokyo());
/// assert_eq!(ctx.distances().get(0, 0), Some(0));
/// assert_eq!(ctx.profile().connectivity_strength(0), 7);
/// assert!(ctx.weighted_distances().is_none()); // no calibration supplied
/// ```
#[derive(Debug, Clone)]
pub struct HardwareContext {
    topology: Topology,
    calibration: Option<Calibration>,
    calibration_issue: Option<CalibrationError>,
    distances: Arc<DistanceMatrix>,
    /// The hop matrix as dense `f64` (`INFINITY` = unreachable): the form
    /// the routing hot loops index, converted once per context instead of
    /// once per lookup.
    distances_f64: Arc<Vec<f64>>,
    weighted: Option<Arc<WeightedDistanceMatrix>>,
    edge_weight: Option<Arc<Vec<f64>>>,
    profile: HardwareProfile,
    components: usize,
}

/// Builds the dense `1 / success` per-edge weight table the
/// variation-aware routing metric reads for local SWAP-step costs
/// (`f64::INFINITY` off the coupling edges).
fn edge_weights(topology: &Topology, calibration: &Calibration) -> Vec<f64> {
    let n = topology.num_qubits();
    let mut edge_weight = vec![f64::INFINITY; n * n];
    for e in topology.graph().edges() {
        let w = 1.0 / calibration.cnot_success(e.a(), e.b());
        edge_weight[e.a() * n + e.b()] = w;
        edge_weight[e.b() * n + e.a()] = w;
    }
    edge_weight
}

/// Process-wide cache behind [`HardwareContext::shared`], keyed by a
/// fingerprint of the `(topology, calibration)` pair. Entries verify
/// full equality on hit, so a fingerprint collision degrades to a
/// rebuild, never to a wrong context.
static SHARED_CONTEXTS: OnceLock<Mutex<HashMap<u64, Vec<Arc<HardwareContext>>>>> = OnceLock::new();

/// Largest number of distinct `(topology, calibration)` pairs the shared
/// cache retains before it is cleared wholesale (a drifting-calibration
/// workload would otherwise grow it without bound).
const SHARED_CACHE_CAP: usize = 64;

/// Stable fingerprint of a `(topology, calibration)` pair — the
/// "calibration epoch" key of the shared context cache. Two epochs of
/// the same device differ in their error-rate bits, so they hash apart.
fn context_fingerprint(topology: &Topology, calibration: Option<&Calibration>) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    topology.fingerprint().hash(&mut h);
    match calibration {
        None => 0u8.hash(&mut h),
        Some(cal) => {
            1u8.hash(&mut h);
            cal.fingerprint().hash(&mut h);
        }
    }
    h.finish()
}

impl HardwareContext {
    /// Builds the context for an uncalibrated target: hop distances and
    /// the connectivity profile are computed here; no weighted matrix.
    pub fn new(topology: Topology) -> Self {
        let distances = Arc::new(topology.distances());
        let distances_f64 = Arc::new(distances.to_f64_flat());
        let profile = topology.profile();
        let components = topology.graph().connected_components().len();
        HardwareContext {
            topology,
            calibration: None,
            calibration_issue: None,
            distances,
            distances_f64,
            weighted: None,
            edge_weight: None,
            profile,
            components,
        }
    }

    /// Builds the context for a calibrated target: additionally computes
    /// the reliability-weighted distance matrix of Figure 6(d).
    ///
    /// The calibration is validated against the topology first. An
    /// unusable table (NaN/out-of-range rates, missing or unknown
    /// couplings — see [`Calibration::validate`]) is **kept but
    /// quarantined**: no weighted matrix is built (so variation-aware
    /// consumers see the target as uncalibrated) and the verdict is
    /// available from [`HardwareContext::calibration_issue`]. This is
    /// what lets the compile pipeline degrade VIC → IC instead of
    /// poisoning reliability weights or panicking.
    pub fn with_calibration(topology: Topology, calibration: Calibration) -> Self {
        let distances = Arc::new(topology.distances());
        let distances_f64 = Arc::new(distances.to_f64_flat());
        let profile = topology.profile();
        let components = topology.graph().connected_components().len();
        let calibration_issue = calibration.validate(&topology).err();
        let (weighted, edge_weight) = if calibration_issue.is_none() {
            (
                Some(Arc::new(topology.weighted_distances(&calibration))),
                Some(Arc::new(edge_weights(&topology, &calibration))),
            )
        } else {
            (None, None)
        };
        HardwareContext {
            topology,
            calibration: Some(calibration),
            calibration_issue,
            distances,
            distances_f64,
            weighted,
            edge_weight,
            profile,
            components,
        }
    }

    /// Builds from an optional calibration — the shape pipeline code sees.
    pub fn from_parts(topology: Topology, calibration: Option<Calibration>) -> Self {
        match calibration {
            Some(cal) => HardwareContext::with_calibration(topology, cal),
            None => HardwareContext::new(topology),
        }
    }

    /// A context from the process-wide cache, keyed by the
    /// `(topology, calibration epoch)` fingerprint: the first request for
    /// a pair pays the Floyd–Warshall construction, every later request
    /// clones an [`Arc`]. This is what keeps legacy per-call compile
    /// entry points (and ladder/retry loops built on them) from
    /// rebuilding `O(n^2)` distance matrices per invocation.
    ///
    /// Entries are compared for full equality after the fingerprint
    /// match, so hash collisions fall back to a correct rebuild. The
    /// cache holds at most [`SHARED_CACHE_CAP`] distinct pairs and is
    /// cleared wholesale beyond that (unbounded growth under drifting
    /// calibrations would be a leak).
    pub fn shared(topology: &Topology, calibration: Option<&Calibration>) -> Arc<HardwareContext> {
        let key = context_fingerprint(topology, calibration);
        let cache = SHARED_CONTEXTS.get_or_init(|| Mutex::new(HashMap::new()));
        {
            let map = cache.lock().expect("shared context cache poisoned");
            if let Some(entries) = map.get(&key) {
                for entry in entries {
                    if entry.topology() == topology && entry.calibration() == calibration {
                        return Arc::clone(entry);
                    }
                }
            }
        }
        // Built outside the lock: Floyd–Warshall on a large device is
        // milliseconds, and batch workers must not serialize on it.
        let built = Arc::new(HardwareContext::from_parts(
            topology.clone(),
            calibration.cloned(),
        ));
        let mut map = cache.lock().expect("shared context cache poisoned");
        if map.len() >= SHARED_CACHE_CAP {
            map.clear();
        }
        map.entry(key).or_default().push(Arc::clone(&built));
        built
    }

    /// The hardware target.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration data, when this context was built with any — even
    /// an unusable table (check [`HardwareContext::calibration_issue`]).
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Why the supplied calibration is unusable, if it failed
    /// [`Calibration::validate`] at construction.
    pub fn calibration_issue(&self) -> Option<&CalibrationError> {
        self.calibration_issue.as_ref()
    }

    /// The calibration data only when it validated against the topology;
    /// reliability-weighted consumers should read through this.
    pub fn usable_calibration(&self) -> Option<&Calibration> {
        if self.calibration_issue.is_none() {
            self.calibration.as_ref()
        } else {
            None
        }
    }

    /// Whether the coupling graph is a single connected component
    /// (cached at construction).
    pub fn is_connected(&self) -> bool {
        self.components <= 1
    }

    /// Number of connected components of the coupling graph (cached at
    /// construction).
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// The cached all-pairs hop-distance matrix (Figure 6(c)).
    pub fn distances(&self) -> &Arc<DistanceMatrix> {
        &self.distances
    }

    /// The hop matrix as a dense row-major `f64` table (`INFINITY` =
    /// unreachable) — the exact values `DistanceMatrix::to_f64_flat`
    /// produces, cached so routing metrics built from this context share
    /// one conversion instead of paying `O(n^2)` per compile.
    pub fn distances_f64(&self) -> &Arc<Vec<f64>> {
        &self.distances_f64
    }

    /// The cached reliability-weighted distance matrix (Figure 6(d));
    /// `None` without calibration.
    pub fn weighted_distances(&self) -> Option<&Arc<WeightedDistanceMatrix>> {
        self.weighted.as_ref()
    }

    /// The cached dense `1 / success` per-edge weight table (row-major
    /// `n x n`, `f64::INFINITY` off the coupling edges) the
    /// variation-aware routing metric reads for local SWAP-step costs;
    /// `None` without usable calibration.
    pub fn edge_weights(&self) -> Option<&Arc<Vec<f64>>> {
        self.edge_weight.as_ref()
    }

    /// The cached connectivity-strength profile (Figure 3(b)).
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// Number of physical qubits (shorthand for
    /// `self.topology().num_qubits()`).
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::shortest_path::apsp_invocations;

    #[test]
    fn uncalibrated_context_caches_hops_and_profile() {
        let topo = Topology::ibmq_20_tokyo();
        let ctx = HardwareContext::new(topo.clone());
        assert_eq!(*ctx.distances().as_ref(), topo.distances());
        assert!(ctx.weighted_distances().is_none());
        assert!(ctx.calibration().is_none());
        assert_eq!(ctx.num_qubits(), 20);
        assert_eq!(
            ctx.profile().connectivity_strength(7),
            topo.profile().connectivity_strength(7)
        );
    }

    #[test]
    fn calibrated_context_caches_weighted_matrix() {
        let (topo, cal) = Calibration::melbourne_2020_04_08();
        let ctx = HardwareContext::with_calibration(topo.clone(), cal.clone());
        let fresh = topo.weighted_distances(&cal);
        let cached = ctx.weighted_distances().expect("calibrated context");
        for u in 0..topo.num_qubits() {
            for v in 0..topo.num_qubits() {
                assert_eq!(cached.get(u, v), fresh.get(u, v));
            }
        }
    }

    #[test]
    fn construction_runs_apsp_a_bounded_number_of_times() {
        // Uncalibrated: exactly one Floyd–Warshall run; calibrated: two.
        // (The counter is process-global, so this test measures deltas and
        // relies on nothing else racing it — `cargo test` runs the other
        // tests in this binary concurrently, hence the dedicated deltas
        // around tight regions with freshly built inputs.)
        let topo = Topology::linear(5);
        let before = apsp_invocations();
        let ctx = HardwareContext::new(topo);
        let mid = apsp_invocations();
        assert!(mid - before >= 1);
        // Consuming the cached artifacts must not trigger recomputation.
        let _ = ctx.distances().get(0, 4);
        let _ = ctx.profile().connectivity_strength(0);
        let _d2 = Arc::clone(ctx.distances());
        assert_eq!(apsp_invocations(), mid);
    }

    #[test]
    fn clone_shares_matrices() {
        let ctx = HardwareContext::new(Topology::grid(4, 4));
        let before = apsp_invocations();
        let clone = ctx.clone();
        assert_eq!(apsp_invocations(), before);
        assert!(Arc::ptr_eq(ctx.distances(), clone.distances()));
    }

    #[test]
    fn corrupt_calibration_is_quarantined_not_fatal() {
        use crate::fault::{FaultInjector, FaultKind};
        let topo = Topology::ibmq_16_melbourne();
        let good = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
        for kind in [
            FaultKind::NanRate,
            FaultKind::DeadLink,
            FaultKind::MissingEntry,
        ] {
            let bad = FaultInjector::new(5).corrupt_calibration(&topo, &good, kind);
            // Previously this construction panicked (missing entry) or
            // poisoned the weighted matrix (NaN); now it quarantines.
            let ctx = HardwareContext::with_calibration(topo.clone(), bad);
            assert!(ctx.calibration().is_some(), "{}", kind.label());
            assert!(ctx.usable_calibration().is_none());
            assert!(ctx.calibration_issue().is_some());
            assert!(ctx.weighted_distances().is_none());
        }
        // A valid table keeps full service.
        let ctx = HardwareContext::with_calibration(topo, good);
        assert!(ctx.calibration_issue().is_none());
        assert!(ctx.usable_calibration().is_some());
        assert!(ctx.weighted_distances().is_some());
    }

    #[test]
    fn connectivity_is_cached_and_exposed() {
        let connected = HardwareContext::new(Topology::ring(6));
        assert!(connected.is_connected());
        assert_eq!(connected.component_count(), 1);

        let mut inj = crate::fault::FaultInjector::new(2);
        let split =
            inj.degrade_topology(&Topology::ring(6), crate::fault::FaultKind::SplitComponent);
        let ctx = HardwareContext::new(split);
        assert!(!ctx.is_connected());
        assert!(ctx.component_count() >= 2);
    }

    #[test]
    fn shared_cache_returns_same_arc_for_same_pair() {
        // A topology no other test constructs, so the first call is a
        // genuine miss and the second a hit on the same entry.
        let topo = Topology::grid(3, 7);
        let cal = Calibration::uniform(&topo, 0.017, 0.001, 0.02);
        let a = HardwareContext::shared(&topo, Some(&cal));
        let b = HardwareContext::shared(&topo, Some(&cal));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.weighted_distances().is_some());

        // A different calibration epoch of the same device is a distinct
        // entry; the uncalibrated flavor is yet another.
        let cal2 = Calibration::uniform(&topo, 0.019, 0.001, 0.02);
        let c = HardwareContext::shared(&topo, Some(&cal2));
        assert!(!Arc::ptr_eq(&a, &c));
        let d = HardwareContext::shared(&topo, None);
        assert!(!Arc::ptr_eq(&a, &d));
        assert!(d.calibration().is_none());
        assert!(Arc::ptr_eq(&d, &HardwareContext::shared(&topo, None)));
    }

    #[test]
    fn fingerprints_separate_structures_and_epochs() {
        // Same structure → same fingerprint; different structure → apart.
        let ring = Topology::ring(6);
        assert_eq!(ring.fingerprint(), Topology::ring(6).fingerprint());
        assert_ne!(ring.fingerprint(), Topology::ring(7).fingerprint());
        assert_ne!(ring.fingerprint(), Topology::linear(6).fingerprint());

        // Calibration epochs hash bit-exactly: even a one-ULP rate drift
        // is a new epoch.
        let cal = Calibration::uniform(&ring, 0.02, 0.001, 0.02);
        assert_eq!(
            cal.fingerprint(),
            Calibration::uniform(&ring, 0.02, 0.001, 0.02).fingerprint()
        );
        let nudged = f64::from_bits(0.02f64.to_bits() + 1);
        let drifted = Calibration::uniform(&ring, nudged, 0.001, 0.02);
        assert_ne!(cal.fingerprint(), drifted.fingerprint());

        // The context fingerprint separates calibrated from uncalibrated
        // and tracks both components.
        assert_ne!(
            context_fingerprint(&ring, None),
            context_fingerprint(&ring, Some(&cal))
        );
        assert_ne!(
            context_fingerprint(&ring, Some(&cal)),
            context_fingerprint(&ring, Some(&drifted))
        );
    }

    #[test]
    fn edge_weights_follow_usable_calibration() {
        let topo = Topology::ring(5);
        let cal = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
        let ctx = HardwareContext::with_calibration(topo.clone(), cal.clone());
        let w = ctx.edge_weights().expect("usable calibration");
        let n = topo.num_qubits();
        assert_eq!(w.len(), n * n);
        for e in topo.graph().edges() {
            let expect = 1.0 / cal.cnot_success(e.a(), e.b());
            assert_eq!(w[e.a() * n + e.b()], expect);
            assert_eq!(w[e.b() * n + e.a()], expect);
        }
        assert!(w[2 * n].is_infinite()); // d(2, 0): non-edge in a 5-ring
        assert!(HardwareContext::new(topo).edge_weights().is_none());
    }

    #[test]
    fn from_parts_matches_dedicated_constructors() {
        let topo = Topology::ring(6);
        let cal = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
        let a = HardwareContext::from_parts(topo.clone(), Some(cal));
        assert!(a.weighted_distances().is_some());
        let b = HardwareContext::from_parts(topo, None);
        assert!(b.weighted_distances().is_none());
    }
}
