use std::collections::BTreeMap;
use std::fmt;

use qgraph::Edge;
use rand::Rng;

use crate::Topology;

/// Per-device calibration data: gate and readout error rates.
///
/// The paper's reliability model (§II "Success Probability") treats the
/// success probability of a gate as `1 - error_rate` and the success
/// probability of a circuit as the product over its gates. CPHASE success
/// is the product of its two CNOTs' successes (§IV-D), which is why only
/// CNOT errors are tracked per edge.
///
/// Error rates are probabilities in `(0, 1)`; construction clamps values
/// into `[MIN_ERROR, MAX_ERROR]` to keep `1 / success` edge weights finite.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    cnot_error: BTreeMap<Edge, f64>,
    single_qubit_error: Vec<f64>,
    readout_error: Vec<f64>,
}

/// Smallest representable error rate after clamping.
pub const MIN_ERROR: f64 = 1e-6;
/// Largest representable error rate after clamping.
pub const MAX_ERROR: f64 = 0.5;

/// Clamps a rate into `[MIN_ERROR, MAX_ERROR]`, mapping every non-finite
/// input (NaN, ±∞) to the pessimistic `MAX_ERROR`.
///
/// `f64::clamp` forwards NaN unchanged, which used to let a NaN error rate
/// poison the `1 / success` reliability weights downstream; an unknown rate
/// is instead treated as a maximally unreliable link.
fn clamp(e: f64) -> f64 {
    if e.is_finite() {
        e.clamp(MIN_ERROR, MAX_ERROR)
    } else {
        MAX_ERROR
    }
}

/// Why a calibration table is unusable for a given [`Topology`].
///
/// Produced by [`Calibration::try_from_cnot_errors`] (structural problems
/// in the input table) and [`Calibration::validate`] (any corruption in an
/// already-built table, e.g. one deserialized from an external source or
/// injected by [`crate::fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationError {
    /// An entry names a qubit pair that is not a coupling of the topology.
    NotACoupling {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A coupling of the topology has no CNOT error entry.
    MissingCoupling {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A CNOT error rate is NaN or infinite.
    NonFiniteCnotRate {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A CNOT error rate lies outside `[MIN_ERROR, MAX_ERROR]` — e.g. a
    /// dead link reported with error rate 1.0, whose success rate of zero
    /// would make the `1 / success` edge weight infinite.
    CnotRateOutOfRange {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A single-qubit or readout rate is NaN, infinite or out of range.
    QubitRateOutOfRange {
        /// The physical qubit.
        q: usize,
    },
    /// The table covers a different number of qubits than the topology.
    WrongQubitCount {
        /// Qubits the calibration covers.
        calibrated: usize,
        /// Qubits the topology has.
        physical: usize,
    },
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::NotACoupling { u, v } => {
                write!(f, "({u}, {v}) is not a coupling of the topology")
            }
            CalibrationError::MissingCoupling { u, v } => {
                write!(f, "missing CNOT error for coupling ({u}, {v})")
            }
            CalibrationError::NonFiniteCnotRate { u, v } => {
                write!(f, "CNOT error rate on ({u}, {v}) is not finite")
            }
            CalibrationError::CnotRateOutOfRange { u, v } => write!(
                f,
                "CNOT error rate on ({u}, {v}) is outside [{MIN_ERROR}, {MAX_ERROR}]"
            ),
            CalibrationError::QubitRateOutOfRange { q } => {
                write!(f, "single-qubit/readout rate on qubit {q} is invalid")
            }
            CalibrationError::WrongQubitCount {
                calibrated,
                physical,
            } => write!(
                f,
                "calibration covers {calibrated} qubits but the topology has {physical}"
            ),
        }
    }
}

impl std::error::Error for CalibrationError {}

impl Calibration {
    /// Builds calibration data from explicit per-edge CNOT errors plus
    /// uniform single-qubit and readout errors.
    ///
    /// Thin panicking wrapper around
    /// [`Calibration::try_from_cnot_errors`]; prefer the fallible form
    /// when the error table comes from an external source (a calibration
    /// service, a file) rather than from code you control.
    ///
    /// # Panics
    ///
    /// Panics if an edge in `cnot_errors` is not a coupling of `topology`,
    /// if any coupling lacks an entry, or if any rate is non-finite.
    pub fn from_cnot_errors(
        topology: &Topology,
        cnot_errors: &[((usize, usize), f64)],
        single_qubit_error: f64,
        readout_error: f64,
    ) -> Self {
        match Calibration::try_from_cnot_errors(
            topology,
            cnot_errors,
            single_qubit_error,
            readout_error,
        ) {
            Ok(cal) => cal,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Calibration::from_cnot_errors`]: a structured
    /// [`CalibrationError`] instead of a panic for unknown or missing
    /// couplings and non-finite rates. Finite rates are clamped into
    /// `[MIN_ERROR, MAX_ERROR]` as the panicking constructor always did.
    pub fn try_from_cnot_errors(
        topology: &Topology,
        cnot_errors: &[((usize, usize), f64)],
        single_qubit_error: f64,
        readout_error: f64,
    ) -> Result<Self, CalibrationError> {
        let mut map = BTreeMap::new();
        for &((u, v), e) in cnot_errors {
            if !topology.are_coupled(u, v) {
                return Err(CalibrationError::NotACoupling { u, v });
            }
            if !e.is_finite() {
                return Err(CalibrationError::NonFiniteCnotRate { u, v });
            }
            map.insert(Edge::new(u, v), clamp(e));
        }
        for edge in topology.graph().edges() {
            if !map.contains_key(&edge) {
                return Err(CalibrationError::MissingCoupling {
                    u: edge.a(),
                    v: edge.b(),
                });
            }
        }
        if !single_qubit_error.is_finite() || !readout_error.is_finite() {
            return Err(CalibrationError::QubitRateOutOfRange { q: 0 });
        }
        let n = topology.num_qubits();
        Ok(Calibration {
            cnot_error: map,
            single_qubit_error: vec![clamp(single_qubit_error); n],
            readout_error: vec![clamp(readout_error); n],
        })
    }

    /// Builds a calibration from raw, **unsanitized** parts — rates are
    /// stored verbatim, including NaN, infinities and out-of-range values.
    ///
    /// This is the [`crate::fault`] injector's backdoor for modeling
    /// corrupted calibration feeds; everything downstream must survive
    /// such a table via [`Calibration::validate`].
    pub(crate) fn from_raw_parts(
        cnot_error: BTreeMap<Edge, f64>,
        single_qubit_error: Vec<f64>,
        readout_error: Vec<f64>,
    ) -> Self {
        Calibration {
            cnot_error,
            single_qubit_error,
            readout_error,
        }
    }

    /// Checks this table is usable for `topology`: every coupling is
    /// calibrated (and nothing else is), and every rate is finite and
    /// inside `[MIN_ERROR, MAX_ERROR]`.
    ///
    /// Tables built by this module's constructors always validate; a table
    /// from an external feed (or the [`crate::fault`] injector) may not.
    /// The compile stack calls this before trusting `1 / success`
    /// reliability weights.
    pub fn validate(&self, topology: &Topology) -> Result<(), CalibrationError> {
        let n = topology.num_qubits();
        if self.single_qubit_error.len() != n || self.readout_error.len() != n {
            return Err(CalibrationError::WrongQubitCount {
                calibrated: self.num_qubits(),
                physical: n,
            });
        }
        for (&edge, &e) in &self.cnot_error {
            let (u, v) = (edge.a(), edge.b());
            if !topology.are_coupled(u, v) {
                return Err(CalibrationError::NotACoupling { u, v });
            }
            if !e.is_finite() {
                return Err(CalibrationError::NonFiniteCnotRate { u, v });
            }
            if !(MIN_ERROR..=MAX_ERROR).contains(&e) {
                return Err(CalibrationError::CnotRateOutOfRange { u, v });
            }
        }
        for edge in topology.graph().edges() {
            if !self.cnot_error.contains_key(&edge) {
                return Err(CalibrationError::MissingCoupling {
                    u: edge.a(),
                    v: edge.b(),
                });
            }
        }
        for q in 0..n {
            let s = self.single_qubit_error[q];
            let r = self.readout_error[q];
            if !s.is_finite()
                || !r.is_finite()
                || !(0.0..=1.0).contains(&s)
                || !(0.0..=1.0).contains(&r)
            {
                return Err(CalibrationError::QubitRateOutOfRange { q });
            }
        }
        Ok(())
    }

    /// Uniform calibration: every coupling shares `cnot_error`, every qubit
    /// shares `single_qubit_error` and `readout_error`. With uniform
    /// calibration VIC degenerates to IC (all paths equally reliable).
    pub fn uniform(
        topology: &Topology,
        cnot_error: f64,
        single_qubit_error: f64,
        readout_error: f64,
    ) -> Self {
        let cnot = clamp(cnot_error);
        Calibration {
            cnot_error: topology.graph().edges().map(|e| (e, cnot)).collect(),
            single_qubit_error: vec![clamp(single_qubit_error); topology.num_qubits()],
            readout_error: vec![clamp(readout_error); topology.num_qubits()],
        }
    }

    /// Random calibration with CNOT errors drawn from a normal distribution
    /// `N(mu, sigma)` (clamped), matching the paper's §V-F setup
    /// (`μ = 1.0e-2, σ = 0.5e-2`). Uses Box–Muller so only `rand`'s uniform
    /// sampler is required.
    pub fn random_normal<R: Rng + ?Sized>(
        topology: &Topology,
        mu: f64,
        sigma: f64,
        rng: &mut R,
    ) -> Self {
        let mut sample = || -> f64 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            clamp(mu + sigma * z)
        };
        let cnot_error = topology.graph().edges().map(|e| (e, sample())).collect();
        let n = topology.num_qubits();
        let single: Vec<f64> = (0..n).map(|_| clamp(sample() / 10.0)).collect();
        let readout: Vec<f64> = (0..n).map(|_| clamp(sample() * 2.0)).collect();
        Calibration {
            cnot_error,
            single_qubit_error: single,
            readout_error: readout,
        }
    }

    /// The `ibmq_16_melbourne` CNOT error rates reported in Figure 10(a)
    /// (calibration of 2020-04-08), with typical single-qubit and readout
    /// errors for that device generation.
    ///
    /// The figure's edge→value pairing is partially ambiguous in the
    /// paper's text; the assignment below preserves the exact multiset of
    /// published error rates and the qualitative layout (reliable links
    /// near qubits 0–3, noisy links around 13–14 and 8–9), which is what
    /// the VIC experiments depend on.
    pub fn melbourne_2020_04_08() -> (Topology, Calibration) {
        let topo = Topology::ibmq_16_melbourne();
        let errors = [
            ((0, 1), 1.87e-2),
            ((1, 2), 1.54e-2),
            ((2, 3), 2.26e-2),
            ((3, 4), 2.96e-2),
            ((4, 5), 3.68e-2),
            ((5, 6), 4.11e-2),
            ((14, 13), 8.29e-2),
            ((13, 12), 5.03e-2),
            ((12, 11), 7.63e-2),
            ((11, 10), 5.80e-2),
            ((10, 9), 4.70e-2),
            ((9, 8), 3.46e-2),
            ((0, 14), 7.63e-2),
            ((1, 13), 2.85e-2),
            ((2, 12), 8.60e-2),
            ((3, 11), 4.16e-2),
            ((4, 10), 7.78e-2),
            ((5, 9), 3.89e-2),
            ((6, 8), 1.77e-2),
            ((7, 8), 2.87e-2),
        ];
        let cal = Calibration::from_cnot_errors(&topo, &errors, 1e-3, 3e-2);
        (topo, cal)
    }

    /// A temporally drifted copy of this calibration: each CNOT error is
    /// multiplied by a log-normal factor `exp(sigma * z)`, `z ~ N(0, 1)`.
    ///
    /// Models the day-to-day variation of qubit quality metrics (\[69\],
    /// cited by §VII): compiling against yesterday's calibration and
    /// executing under today's is exactly the mismatch the
    /// `ext_stale_calibration` experiment measures for VIC.
    pub fn drifted<R: Rng + ?Sized>(&self, sigma: f64, rng: &mut R) -> Calibration {
        let mut lognormal = |e: f64| -> f64 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            clamp(e * (sigma * z).exp())
        };
        Calibration {
            cnot_error: self
                .cnot_error
                .iter()
                .map(|(&edge, &e)| (edge, lognormal(e)))
                .collect(),
            single_qubit_error: self
                .single_qubit_error
                .iter()
                .map(|&e| lognormal(e))
                .collect(),
            readout_error: self.readout_error.iter().map(|&e| lognormal(e)).collect(),
        }
    }

    /// CNOT error rate on the coupling `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `(u, v)` is not a calibrated coupling.
    pub fn cnot_error(&self, u: usize, v: usize) -> f64 {
        *self
            .cnot_error
            .get(&Edge::new(u, v))
            .unwrap_or_else(|| panic!("({u}, {v}) is not a calibrated coupling"))
    }

    /// CNOT success rate `1 - error` on the coupling `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `(u, v)` is not a calibrated coupling.
    pub fn cnot_success(&self, u: usize, v: usize) -> f64 {
        1.0 - self.cnot_error(u, v)
    }

    /// Success rate of the two-CNOT "CPHASE" on `(u, v)` — the square of
    /// the CNOT success rate (§IV-D).
    ///
    /// # Panics
    ///
    /// Panics if `(u, v)` is not a calibrated coupling.
    pub fn cphase_success(&self, u: usize, v: usize) -> f64 {
        let s = self.cnot_success(u, v);
        s * s
    }

    /// Single-qubit gate error rate on physical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn single_qubit_error(&self, q: usize) -> f64 {
        self.single_qubit_error[q]
    }

    /// Readout (measurement) error rate on physical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn readout_error(&self, q: usize) -> f64 {
        self.readout_error[q]
    }

    /// Number of calibrated qubits.
    pub fn num_qubits(&self) -> usize {
        self.single_qubit_error.len()
    }

    /// Iterates over `(edge, cnot_error)` pairs in canonical edge order.
    pub fn cnot_errors(&self) -> impl Iterator<Item = (Edge, f64)> + '_ {
        self.cnot_error.iter().map(|(&e, &err)| (e, err))
    }

    /// The best (lowest-error) coupling, or `None` for a device with no
    /// couplings.
    pub fn best_coupling(&self) -> Option<(Edge, f64)> {
        self.cnot_errors().min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The worst (highest-error) coupling.
    pub fn worst_coupling(&self) -> Option<(Edge, f64)> {
        self.cnot_errors().max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Stable fingerprint of this calibration epoch: every CNOT,
    /// single-qubit and readout error rate hashed bit-exactly (via
    /// `f64::to_bits`, so even a one-ULP drift reads as a new epoch).
    /// Combined with [`crate::Topology::fingerprint`] this keys the
    /// shared-context and compiled-artifact caches.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.num_qubits().hash(&mut h);
        for (e, rate) in self.cnot_errors() {
            (e.a(), e.b(), rate.to_bits()).hash(&mut h);
        }
        for q in 0..self.num_qubits() {
            self.single_qubit_error(q).to_bits().hash(&mut h);
            self.readout_error(q).to_bits().hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_every_coupling() {
        let t = Topology::ibmq_20_tokyo();
        let c = Calibration::uniform(&t, 0.01, 0.001, 0.02);
        for e in t.graph().edges() {
            assert_eq!(c.cnot_error(e.a(), e.b()), 0.01);
            assert_eq!(c.cnot_success(e.a(), e.b()), 0.99);
        }
        assert_eq!(c.num_qubits(), 20);
    }

    #[test]
    fn cphase_success_is_squared_cnot() {
        let t = Topology::linear(2);
        let c = Calibration::uniform(&t, 0.1, 0.0, 0.0);
        assert!((c.cphase_success(0, 1) - 0.81).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn uncoupled_pair_panics() {
        let t = Topology::linear(3);
        let c = Calibration::uniform(&t, 0.01, 0.001, 0.02);
        let _ = c.cnot_error(0, 2);
    }

    #[test]
    fn melbourne_calibration_matches_figure() {
        let (topo, cal) = Calibration::melbourne_2020_04_08();
        assert_eq!(cal.num_qubits(), 15);
        // Every coupling in the topology is calibrated.
        for e in topo.graph().edges() {
            assert!(cal.cnot_error(e.a(), e.b()) > 0.0);
        }
        // Spot values from Figure 10(a).
        assert!((cal.cnot_error(0, 1) - 1.87e-2).abs() < 1e-12);
        assert!((cal.cnot_error(2, 12) - 8.60e-2).abs() < 1e-12);
        assert!((cal.cnot_error(7, 8) - 2.87e-2).abs() < 1e-12);
        // Published best/worst links.
        assert_eq!(cal.best_coupling().unwrap().1, 1.54e-2);
        assert_eq!(cal.worst_coupling().unwrap().1, 8.60e-2);
    }

    #[test]
    fn random_normal_is_clamped_and_seeded() {
        let t = Topology::grid(6, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let c1 = Calibration::random_normal(&t, 1.0e-2, 0.5e-2, &mut rng);
        for (_, e) in c1.cnot_errors() {
            assert!((MIN_ERROR..=MAX_ERROR).contains(&e));
        }
        let mut rng2 = StdRng::seed_from_u64(7);
        let c2 = Calibration::random_normal(&t, 1.0e-2, 0.5e-2, &mut rng2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn random_normal_mean_is_close_to_mu() {
        let t = Topology::grid(10, 10);
        let mut rng = StdRng::seed_from_u64(21);
        let c = Calibration::random_normal(&t, 1.0e-2, 0.5e-2, &mut rng);
        let errs: Vec<f64> = c.cnot_errors().map(|(_, e)| e).collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!((mean - 1.0e-2).abs() < 2.0e-3, "mean = {mean}");
    }

    #[test]
    fn from_cnot_errors_clamps() {
        let t = Topology::linear(2);
        let c = Calibration::from_cnot_errors(&t, &[((0, 1), 2.0)], 0.0, -1.0);
        assert_eq!(c.cnot_error(0, 1), MAX_ERROR);
        assert_eq!(c.single_qubit_error(0), MIN_ERROR);
        assert_eq!(c.readout_error(1), MIN_ERROR);
    }

    #[test]
    #[should_panic]
    fn missing_coupling_entry_panics() {
        let t = Topology::linear(3);
        let _ = Calibration::from_cnot_errors(&t, &[((0, 1), 0.01)], 0.001, 0.02);
    }

    #[test]
    fn clamp_maps_non_finite_rates_to_max_error() {
        // `f64::clamp` forwards NaN; ours must not (NaN would otherwise
        // poison every `1 / success` reliability weight downstream).
        assert_eq!(clamp(f64::NAN), MAX_ERROR);
        assert_eq!(clamp(f64::INFINITY), MAX_ERROR);
        assert_eq!(clamp(f64::NEG_INFINITY), MAX_ERROR);
        assert_eq!(clamp(0.25), 0.25);
        assert_eq!(clamp(-3.0), MIN_ERROR);
        assert_eq!(clamp(7.0), MAX_ERROR);
        // Constructors that sanitize inherit the mapping.
        let t = Topology::linear(2);
        let c = Calibration::uniform(&t, f64::NAN, f64::INFINITY, f64::NAN);
        assert!(c.validate(&t).is_ok());
        assert_eq!(c.cnot_error(0, 1), MAX_ERROR);
        assert_eq!(c.single_qubit_error(0), MAX_ERROR);
    }

    #[test]
    fn try_from_cnot_errors_reports_structured_errors() {
        let t = Topology::linear(3);
        // Unknown coupling.
        let err = Calibration::try_from_cnot_errors(
            &t,
            &[((0, 1), 0.01), ((1, 2), 0.01), ((0, 2), 0.01)],
            0.001,
            0.02,
        )
        .unwrap_err();
        assert_eq!(err, CalibrationError::NotACoupling { u: 0, v: 2 });
        // Missing coupling.
        let err =
            Calibration::try_from_cnot_errors(&t, &[((0, 1), 0.01)], 0.001, 0.02).unwrap_err();
        assert_eq!(err, CalibrationError::MissingCoupling { u: 1, v: 2 });
        // Non-finite rate.
        let err = Calibration::try_from_cnot_errors(
            &t,
            &[((0, 1), f64::NAN), ((1, 2), 0.01)],
            0.001,
            0.02,
        )
        .unwrap_err();
        assert_eq!(err, CalibrationError::NonFiniteCnotRate { u: 0, v: 1 });
        // A good table round-trips and matches the panicking constructor.
        let table = [((0, 1), 0.01), ((1, 2), 0.03)];
        let a = Calibration::try_from_cnot_errors(&t, &table, 0.001, 0.02).unwrap();
        let b = Calibration::from_cnot_errors(&t, &table, 0.001, 0.02);
        assert_eq!(a, b);
        assert!(a.validate(&t).is_ok());
    }

    #[test]
    fn validate_rejects_raw_corruption() {
        let t = Topology::linear(3);
        let good = Calibration::uniform(&t, 0.02, 0.001, 0.02);
        assert!(good.validate(&t).is_ok());
        // Wrong device entirely.
        assert_eq!(
            good.validate(&Topology::linear(4)).unwrap_err(),
            CalibrationError::WrongQubitCount {
                calibrated: 3,
                physical: 4
            }
        );
        // Raw NaN smuggled in.
        let mut map: BTreeMap<Edge, f64> = good.cnot_errors().collect();
        map.insert(Edge::new(0, 1), f64::NAN);
        let bad = Calibration::from_raw_parts(map, vec![0.001; 3], vec![0.02; 3]);
        assert_eq!(
            bad.validate(&t).unwrap_err(),
            CalibrationError::NonFiniteCnotRate { u: 0, v: 1 }
        );
        // Dead link: error rate 1.0 ⇒ success 0 ⇒ infinite edge weight.
        let mut map: BTreeMap<Edge, f64> = good.cnot_errors().collect();
        map.insert(Edge::new(1, 2), 1.0);
        let dead = Calibration::from_raw_parts(map, vec![0.001; 3], vec![0.02; 3]);
        assert_eq!(
            dead.validate(&t).unwrap_err(),
            CalibrationError::CnotRateOutOfRange { u: 1, v: 2 }
        );
        // Missing edge entry.
        let mut map: BTreeMap<Edge, f64> = good.cnot_errors().collect();
        map.remove(&Edge::new(1, 2));
        let sparse = Calibration::from_raw_parts(map, vec![0.001; 3], vec![0.02; 3]);
        assert_eq!(
            sparse.validate(&t).unwrap_err(),
            CalibrationError::MissingCoupling { u: 1, v: 2 }
        );
    }
}

#[cfg(test)]
mod drift_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drift_preserves_structure_and_clamps() {
        let (topo, cal) = Calibration::melbourne_2020_04_08();
        let mut rng = StdRng::seed_from_u64(7);
        let drifted = cal.drifted(0.4, &mut rng);
        assert_eq!(drifted.num_qubits(), cal.num_qubits());
        for e in topo.graph().edges() {
            let d = drifted.cnot_error(e.a(), e.b());
            assert!((MIN_ERROR..=MAX_ERROR).contains(&d));
        }
        // Drift changes values but not wildly in expectation.
        let mean_orig: f64 = cal.cnot_errors().map(|(_, e)| e).sum::<f64>() / 20.0;
        let mean_drift: f64 = drifted.cnot_errors().map(|(_, e)| e).sum::<f64>() / 20.0;
        assert!((mean_drift / mean_orig) > 0.5 && (mean_drift / mean_orig) < 2.5);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let (_, cal) = Calibration::melbourne_2020_04_08();
        let mut rng = StdRng::seed_from_u64(7);
        let same = cal.drifted(0.0, &mut rng);
        assert_eq!(same, cal);
    }
}
