//! `qaoac` — command-line QAOA-MaxCut compiler.
//!
//! Compiles a MaxCut problem graph into a hardware-compliant circuit with
//! one of the paper's methodologies and emits OpenQASM 2.0 plus quality
//! metrics.
//!
//! ```text
//! USAGE:
//!   qaoac [OPTIONS]
//!
//! OPTIONS:
//!   --edges FILE       problem graph as "u v" pairs, one edge per line
//!                      (default: a random 12-node 3-regular graph)
//!   --nodes N          nodes for the generated graph (default 12)
//!   --degree K         degree for the generated graph (default 3)
//!   --device NAME      tokyo | melbourne | grid6x6 | linear<N> | ring<N>
//!                      (default tokyo)
//!   --strategy NAME    naive | greedyv | dense | qaim | ip | ic | vic (default ic)
//!   --packing N        layer packing limit (default: unlimited)
//!   --p N              QAOA levels (default 1)
//!   --optimize         find (γ, β) by grid search + Nelder–Mead
//!                      (needs <= 24 nodes; default: fixed representative
//!                      angles)
//!   --seed N           RNG seed (default 7)
//!   --out FILE         write OpenQASM here (default: stdout)
//!   --draw             also print an ASCII drawing of the compiled circuit
//! ```

use std::io::Write as _;

use qaoa::{MaxCut, QaoaParams};
use qcompile::{compile, Compilation, CompileOptions, InitialMapping, QaoaSpec};
use qhw::{Calibration, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    edges: Option<String>,
    nodes: usize,
    degree: usize,
    device: String,
    strategy: String,
    packing: Option<usize>,
    p: usize,
    optimize: bool,
    seed: u64,
    out: Option<String>,
    draw: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        edges: None,
        nodes: 12,
        degree: 3,
        device: "tokyo".into(),
        strategy: "ic".into(),
        packing: None,
        p: 1,
        optimize: false,
        seed: 7,
        out: None,
        draw: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--edges" => args.edges = Some(value("--edges")?),
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--degree" => args.degree = value("--degree")?.parse().map_err(|e| format!("{e}"))?,
            "--device" => args.device = value("--device")?,
            "--strategy" => args.strategy = value("--strategy")?,
            "--packing" => {
                args.packing = Some(value("--packing")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--p" => args.p = value("--p")?.parse().map_err(|e| format!("{e}"))?,
            "--optimize" => args.optimize = true,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = Some(value("--out")?),
            "--draw" => args.draw = true,
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of src/bin/qaoac.rs");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn load_graph(args: &Args, rng: &mut StdRng) -> Result<qgraph::Graph, String> {
    match &args.edges {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let mut edges = Vec::new();
            let mut max_node = 0usize;
            for (lineno, line) in text.lines().enumerate() {
                let line = line.split('#').next().unwrap_or("").trim();
                if line.is_empty() {
                    continue;
                }
                let mut parts = line.split_whitespace();
                let parse = |p: Option<&str>| -> Result<usize, String> {
                    p.ok_or_else(|| format!("line {}: expected 'u v'", lineno + 1))?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 1))
                };
                let u = parse(parts.next())?;
                let v = parse(parts.next())?;
                max_node = max_node.max(u).max(v);
                edges.push((u, v));
            }
            qgraph::Graph::from_edges(max_node + 1, edges).map_err(|e| format!("{e}"))
        }
        None => qgraph::generators::connected_random_regular(args.nodes, args.degree, 10_000, rng)
            .map_err(|e| format!("{e}")),
    }
}

fn device(name: &str) -> Result<Topology, String> {
    if let Some(n) = name.strip_prefix("linear") {
        return Ok(Topology::linear(n.parse().map_err(|e| format!("{e}"))?));
    }
    if let Some(n) = name.strip_prefix("ring") {
        return Ok(Topology::ring(n.parse().map_err(|e| format!("{e}"))?));
    }
    match name {
        "tokyo" => Ok(Topology::ibmq_20_tokyo()),
        "melbourne" => Ok(Topology::ibmq_16_melbourne()),
        "grid6x6" => Ok(Topology::grid(6, 6)),
        other => Err(format!("unknown device {other}")),
    }
}

fn strategy(name: &str) -> Result<CompileOptions, String> {
    match name {
        "naive" => Ok(CompileOptions::naive()),
        "greedyv" => Ok(CompileOptions::new(
            InitialMapping::GreedyV,
            Compilation::RandomOrder,
        )),
        "dense" => Ok(CompileOptions::new(
            InitialMapping::Dense,
            Compilation::RandomOrder,
        )),
        "qaim" => Ok(CompileOptions::qaim_only()),
        "ip" => Ok(CompileOptions::ip()),
        "ic" => Ok(CompileOptions::ic()),
        "vic" => Ok(CompileOptions::vic()),
        other => Err(format!("unknown strategy {other}")),
    }
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("qaoac: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let graph = load_graph(&args, &mut rng)?;
    let topo = device(&args.device)?;
    let mut options = strategy(&args.strategy)?;
    if let Some(limit) = args.packing {
        options = options.with_packing_limit(limit);
    }

    eprintln!(
        "problem: {} nodes, {} edges; device: {}; strategy: {}",
        graph.node_count(),
        graph.edge_count(),
        topo.name(),
        args.strategy
    );

    let params = if args.optimize {
        if graph.node_count() > 24 {
            return Err("--optimize needs <= 24 nodes (exact simulation)".into());
        }
        let problem = MaxCut::new(graph.clone());
        let (params, expectation) = qaoa::optimize::grid_then_nelder_mead(&problem, args.p, 24);
        eprintln!(
            "optimized parameters: {:?} (expectation {:.3}, ratio {:.3})",
            params.levels(),
            expectation,
            expectation / problem.max_value()
        );
        params
    } else {
        QaoaParams::new(vec![(0.9, 0.35); args.p])
    };

    let problem = MaxCut::without_optimum(graph);
    let spec = QaoaSpec::from_maxcut(&problem, &params, true);
    // VIC needs calibration; synthesize a seeded one for devices we have
    // no published table for.
    let calibration = if args.device == "melbourne" {
        Calibration::melbourne_2020_04_08().1
    } else {
        Calibration::random_normal(&topo, 1.0e-2, 0.5e-2, &mut rng)
    };
    let compiled = compile(&spec, &topo, Some(&calibration), &options, &mut rng);

    eprintln!(
        "compiled: depth {}, {} gates ({} CNOTs), {} SWAPs, success probability {:.3e}, {:?}",
        compiled.depth(),
        compiled.gate_count(),
        compiled.cx_count(),
        compiled.swap_count(),
        compiled.success_probability(&calibration),
        compiled.elapsed()
    );
    if args.draw {
        eprintln!("{}", qcircuit::draw::draw(compiled.physical()));
    }

    let qasm = qcircuit::qasm::to_qasm(compiled.basis_circuit())
        .map_err(|e| format!("exporting QASM: {e}"))?;
    match &args.out {
        Some(path) => {
            std::fs::write(path, qasm).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => {
            std::io::stdout()
                .write_all(qasm.as_bytes())
                .map_err(|e| format!("writing stdout: {e}"))?;
        }
    }
    Ok(())
}
