//! Facade crate re-exporting the full QAOA compilation stack — a Rust
//! reproduction of *Circuit Compilation Methodologies for Quantum
//! Approximate Optimization Algorithm* (MICRO 2020).
//!
//! The stack, bottom up:
//!
//! * [`qgraph`] — problem/coupling graphs, generators, shortest paths.
//! * [`qcircuit`] — circuit IR, layering, basis lowering, QASM.
//! * [`qhw`] — device topologies, calibration, connectivity profiles.
//! * [`qsim`] — statevector + density-matrix simulation, trajectory noise.
//! * [`qroute`] — the backend transpiler (SWAP insertion, verification).
//! * [`qaoa`] — MaxCut/Ising Hamiltonians, ansatz, optimization, ARG.
//! * [`qcompile`] — the paper's methodologies: QAIM, IP, IC, VIC.
//!
//! # Examples
//!
//! Compile a MaxCut instance for the 20-qubit Tokyo device with IC(+QAIM)
//! and verify the result respects the hardware coupling:
//!
//! ```
//! use qaoa_compiler::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let graph = qgraph::generators::connected_random_regular(10, 3, 1000, &mut rng)?;
//! let problem = qaoa::MaxCut::new(graph);
//! let spec = qcompile::QaoaSpec::from_maxcut(
//!     &problem,
//!     &qaoa::QaoaParams::p1(0.9, 0.35),
//!     true,
//! );
//! let device = qhw::Topology::ibmq_20_tokyo();
//! let compiled = qcompile::compile(
//!     &spec,
//!     &device,
//!     None,
//!     &qcompile::CompileOptions::ic(),
//!     &mut rng,
//! );
//! assert!(qroute::satisfies_coupling(compiled.physical(), &device));
//! # Ok::<(), qgraph::GraphError>(())
//! ```

pub use qaoa;
pub use qcircuit;
pub use qcompile;
pub use qgraph;
pub use qhw;
pub use qroute;
pub use qsim;
