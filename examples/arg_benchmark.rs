//! End-to-end ARG measurement for one instance: optimize QAOA parameters,
//! compile with IC, sample the ideal circuit on the noiseless simulator
//! and the compiled circuit on the trajectory-noise "hardware", and report
//! the Approximation Ratio Gap (§V-A).
//!
//! Run with: `cargo run --release --example arg_benchmark [nodes] [shots]`

use qaoa::{approximation_ratio_from_counts, approximation_ratio_gap, qaoa_circuit, MaxCut};
use qcompile::{compile_artifact, CompileOptions, QaoaSpec};
use qhw::Calibration;
use qsim::{Counts, NoiseModel, Sampler, StateVector, TrajectorySimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let shots: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);

    let mut rng = StdRng::seed_from_u64(77);
    let graph = qgraph::generators::connected_erdos_renyi(nodes, 0.5, 10_000, &mut rng)?;
    let problem = MaxCut::new(graph);
    println!(
        "{nodes}-node ER(0.5) MaxCut instance: {} edges, optimum {}",
        problem.graph().edge_count(),
        problem.max_value()
    );

    // 1. Optimize p=1 parameters on the noiseless simulator.
    let (params, expectation) = qaoa::optimize::grid_then_nelder_mead(&problem, 1, 24);
    println!(
        "optimized (gamma, beta) = ({:.3}, {:.3}); ideal expectation ratio {:.3}",
        params.levels()[0].0,
        params.levels()[0].1,
        expectation / problem.max_value()
    );

    // 2. Ideal approximation ratio r0 from finite sampling.
    let ideal = StateVector::from_circuit(&qaoa_circuit(&problem, &params, false));
    let r0 = approximation_ratio_from_counts(
        &problem,
        &Sampler::new(&ideal).sample_counts(shots, &mut rng),
    );
    println!("r0 (noiseless, {shots} shots) = {r0}");

    // 3. Compile for melbourne and "run on hardware" (trajectory noise).
    //    The compile flow never looks at the angles, so the parametric
    //    template is compiled once and the optimized parameters are
    //    bound into it afterwards — re-optimizing (or sweeping p=1
    //    angles) would reuse the same artifact with fresh `bind` calls.
    let (topo, cal) = Calibration::melbourne_2020_04_08();
    let spec = QaoaSpec::from_maxcut_parametric(&problem, 1, true);
    let artifact = compile_artifact(&spec, &topo, Some(&cal), &CompileOptions::ic(), &mut rng);
    let compiled = artifact.bind(&params.to_values())?;
    println!(
        "compiled with IC(+QAIM): depth {}, {} CNOTs, {} SWAPs",
        compiled.depth(),
        compiled.cx_count(),
        compiled.swap_count()
    );

    let sim = TrajectorySimulator::new(NoiseModel::new(cal));
    let physical_counts = sim.sample(compiled.physical(), shots, 128, &mut rng);
    // Read results back through the final layout.
    let mut logical_counts = Counts::new();
    for (phys_state, k) in physical_counts {
        let mut logical_state = 0usize;
        for l in 0..problem.num_vars() {
            if phys_state >> compiled.final_layout().phys(l) & 1 == 1 {
                logical_state |= 1 << l;
            }
        }
        *logical_counts.entry(logical_state).or_insert(0) += k;
    }
    let rh = approximation_ratio_from_counts(&problem, &logical_counts);
    println!("rh (hardware model, {shots} shots) = {rh}");
    println!("ARG = {:.2}%", approximation_ratio_gap(r0, rh));
    Ok(())
}
