//! Layer packing-density sweep (§V-H): compile one dense 36-node instance
//! on the hypothetical 6×6 grid with IC(+QAIM) under increasing packing
//! limits and watch the depth / gate-count / compile-time trade-off.
//!
//! Run with: `cargo run --release --example packing_sweep`

use qaoa::{MaxCut, QaoaParams};
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    let graph = qgraph::generators::connected_erdos_renyi(36, 0.5, 10_000, &mut rng)?;
    let problem = MaxCut::without_optimum(graph);
    let spec = QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.9, 0.35), true);
    let topo = Topology::grid(6, 6);
    println!(
        "36-node ER(0.5) instance with {} CPHASE gates on {}",
        spec.total_cphase_count(),
        topo.name()
    );

    println!(
        "\n{:<15} {:>7} {:>7} {:>7} {:>12}",
        "packing limit", "depth", "gates", "swaps", "time"
    );
    for limit in [1usize, 2, 3, 5, 7, 9, 11, 13, 15, 18] {
        let options = CompileOptions::ic().with_packing_limit(limit);
        let mut c_rng = StdRng::seed_from_u64(17);
        let compiled = compile(&spec, &topo, None, &options, &mut c_rng);
        println!(
            "{:<15} {:>7} {:>7} {:>7} {:>12?}",
            limit,
            compiled.depth(),
            compiled.gate_count(),
            compiled.swap_count(),
            compiled.elapsed()
        );
    }
    println!("\n(the paper's Figure 12: depth improves with packing then degrades;\n gate count grows with packing; compile time falls)");
    Ok(())
}
