//! Compile a realistic 20-node QAOA-MaxCut workload for the IBM 20-qubit
//! Tokyo device with every strategy of the paper and compare the quality
//! metrics — a miniature of the Figure 11(a) experiment.
//!
//! Run with: `cargo run --release --example maxcut_tokyo [nodes] [k]`

use qaoa::{MaxCut, QaoaParams};
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::{Calibration, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let degree: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let mut rng = StdRng::seed_from_u64(2026);
    let graph = qgraph::generators::connected_random_regular(nodes, degree, 10_000, &mut rng)?;
    println!(
        "problem: {nodes}-node {degree}-regular MaxCut ({} CPHASE gates at p=1)",
        graph.edge_count()
    );

    let problem = MaxCut::without_optimum(graph);
    let spec = QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.9, 0.35), true);
    let topo = Topology::ibmq_20_tokyo();
    let cal = Calibration::random_normal(&topo, 1.0e-2, 0.5e-2, &mut rng);

    println!(
        "\n{:<10} {:>7} {:>7} {:>7} {:>7} {:>12} {:>12}",
        "method", "depth", "gates", "cx", "swaps", "succ prob", "time"
    );
    for (name, options) in [
        ("NAIVE", CompileOptions::naive()),
        ("QAIM", CompileOptions::qaim_only()),
        ("IP", CompileOptions::ip()),
        ("IC", CompileOptions::ic()),
        ("VIC", CompileOptions::vic()),
    ] {
        let compiled = compile(&spec, &topo, Some(&cal), &options, &mut rng);
        assert!(qroute::satisfies_coupling(compiled.physical(), &topo));
        println!(
            "{:<10} {:>7} {:>7} {:>7} {:>7} {:>12.3e} {:>12?}",
            name,
            compiled.depth(),
            compiled.gate_count(),
            compiled.cx_count(),
            compiled.swap_count(),
            compiled.success_probability(&cal),
            compiled.elapsed()
        );
    }
    Ok(())
}
