//! Beyond MaxCut (§VI): solve a general Ising problem — weighted
//! couplings plus longitudinal fields — end to end: optimize, compile
//! with IC(+QAIM) for melbourne, sample, and report the best found
//! configuration against the true ground state.
//!
//! Run with: `cargo run --release --example ising_fields`

use qaoa::ising::IsingProblem;
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::Calibration;
use qsim::{Sampler, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A frustrated 10-spin system: random ±J couplings on a connected
    // random graph plus weak random fields.
    let mut rng = StdRng::seed_from_u64(99);
    let n = 10;
    let graph = qgraph::generators::connected_erdos_renyi(n, 0.35, 10_000, &mut rng)?;
    let couplings: Vec<(usize, usize, f64)> = graph
        .edges()
        .map(|e| (e.a(), e.b(), if rng.gen_bool(0.5) { 1.0 } else { -1.0 }))
        .collect();
    let fields: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.3..0.3)).collect();
    let problem = IsingProblem::new(n, couplings, fields);
    let ground = problem.ground_energy();
    println!(
        "{n}-spin Ising instance: {} couplings, ground energy {ground:.3}",
        problem.couplings().len()
    );

    // Optimize p=2 parameters by simulation.
    let (params, expectation) = problem.optimize(2, 16);
    println!(
        "optimized p=2 expectation: {expectation:.3} ({:.1}% of ground)",
        100.0 * expectation / ground
    );

    // Compile for melbourne with IC(+QAIM).
    let (topo, cal) = Calibration::melbourne_2020_04_08();
    let spec = QaoaSpec::from_ising(&problem, &params, true);
    let mut c_rng = StdRng::seed_from_u64(7);
    let compiled = compile(&spec, &topo, Some(&cal), &CompileOptions::ic(), &mut c_rng);
    println!(
        "compiled: depth {}, {} gates, {} SWAPs, success probability {:.3e}",
        compiled.depth(),
        compiled.gate_count(),
        compiled.swap_count(),
        compiled.success_probability(&cal)
    );

    // Sample the compiled circuit (noiselessly) and report the best
    // configuration found among 2048 shots.
    let state = StateVector::from_circuit(compiled.physical());
    let counts = Sampler::new(&state).sample_counts(2048, &mut c_rng);
    let mut best = (usize::MAX, f64::INFINITY);
    for &phys in counts.keys() {
        let mut bits = 0usize;
        for l in 0..n {
            if phys >> compiled.final_layout().phys(l) & 1 == 1 {
                bits |= 1 << l;
            }
        }
        let e = problem.energy(bits);
        if e < best.1 {
            best = (bits, e);
        }
    }
    println!(
        "best sampled configuration: {:0width$b} with energy {:.3} (ground {ground:.3})",
        best.0,
        best.1,
        width = n
    );
    assert!(
        best.1 <= ground + 1e-9 || best.1 - ground < 2.0,
        "sampling found a good state"
    );
    Ok(())
}
