//! Variation-aware compilation on real calibration data: compile the same
//! problem with IC and VIC for `ibmq_16_melbourne` using the CNOT error
//! rates of Figure 10(a), then verify the VIC circuit routes its two-qubit
//! traffic over more reliable couplings.
//!
//! Run with: `cargo run --release --example variation_aware`

use qaoa::{MaxCut, QaoaParams};
use qcircuit::Circuit;
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::Calibration;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean CNOT error over the two-qubit gates the circuit actually executes.
fn mean_edge_error(circuit: &Circuit, cal: &Calibration) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for instr in circuit.iter().filter(|i| i.gate().arity() == 2) {
        total += cal.cnot_error(instr.q0(), instr.q1());
        count += 1;
    }
    total / count.max(1) as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (topo, cal) = Calibration::melbourne_2020_04_08();
    println!("device: {} with the 2020-04-08 calibration", topo.name());
    let (best, worst) = (cal.best_coupling().unwrap(), cal.worst_coupling().unwrap());
    println!(
        "best coupling ({}, {}) at {:.2}% error; worst ({}, {}) at {:.2}%\n",
        best.0.a(),
        best.0.b(),
        100.0 * best.1,
        worst.0.a(),
        worst.0.b(),
        100.0 * worst.1,
    );

    let mut rng = StdRng::seed_from_u64(42);
    let (mut sp_ic_total, mut sp_vic_total) = (0.0, 0.0);
    let runs = 10;
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>12} {:>11} {:>11}",
        "inst", "ic swaps", "vic swaps", "ic SP", "vic SP", "ic err/2q", "vic err/2q"
    );
    for inst in 0..runs {
        let mut g_rng = StdRng::seed_from_u64(7_000 + inst);
        let graph = qgraph::generators::connected_erdos_renyi(12, 0.4, 10_000, &mut g_rng)?;
        let problem = MaxCut::without_optimum(graph);
        let spec = QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.8, 0.4), true);

        let ic = compile(&spec, &topo, Some(&cal), &CompileOptions::ic(), &mut rng);
        let vic = compile(&spec, &topo, Some(&cal), &CompileOptions::vic(), &mut rng);
        let (sp_ic, sp_vic) = (ic.success_probability(&cal), vic.success_probability(&cal));
        sp_ic_total += sp_ic;
        sp_vic_total += sp_vic;
        println!(
            "{:<6} {:>10} {:>10} {:>12.3e} {:>12.3e} {:>10.2}% {:>10.2}%",
            inst,
            ic.swap_count(),
            vic.swap_count(),
            sp_ic,
            sp_vic,
            100.0 * mean_edge_error(ic.physical(), &cal),
            100.0 * mean_edge_error(vic.physical(), &cal),
        );
    }
    println!(
        "\nmean success probability: IC {:.3e}, VIC {:.3e} (ratio {:.2})",
        sp_ic_total / runs as f64,
        sp_vic_total / runs as f64,
        sp_vic_total / sp_ic_total
    );
    Ok(())
}
