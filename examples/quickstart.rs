//! Quickstart: compile the paper's Figure 1 example end to end.
//!
//! Builds the QAOA-MaxCut circuit of the 4-node 3-regular graph of
//! Figure 1(a), compiles it for the 4-qubit linear device of Figure 1(d)
//! with the NAIVE baseline and with IC(+QAIM), and prints both circuits
//! with their quality metrics. Tracing is enabled throughout: the run
//! ends with the compile *explain report* for the IC run and the span
//! timings the qtrace recorder collected along the way.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Pass `--explain <path>` to also write the explain report as
//! deterministic JSON (the same artifact CI uploads from the
//! bench-regress job).

use qaoa::MaxCut;
use qcompile::{compile, compile_artifact, CompileOptions, QaoaSpec};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record span timings and timeline events for everything below.
    qtrace::enable();
    qtrace::global().capture_events(true);
    let explain_path = std::env::args()
        .skip(1)
        .skip_while(|a| a != "--explain")
        .nth(1)
        .map(std::path::PathBuf::from);

    // Figure 1(a): the 4-node 3-regular graph (complete graph K4).
    let graph = qgraph::Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])?;
    let problem = MaxCut::new(graph);
    println!(
        "MaxCut optimum of the Figure 1(a) graph: {}",
        problem.max_value()
    );

    // Find good p=1 parameters analytically + by simplex refinement.
    let (params, expectation) = qaoa::optimize::grid_then_nelder_mead(&problem, 1, 24);
    let (gamma, beta) = params.levels()[0];
    println!("optimized p=1 parameters: gamma={gamma:.3}, beta={beta:.3}");
    println!(
        "expectation {expectation:.3} -> approximation ratio {:.3}\n",
        expectation / problem.max_value()
    );

    // The logical circuit (Figure 1(b)).
    let logical = qaoa::qaoa_circuit(&problem, &params, true);
    println!(
        "logical circuit (depth {}):\n{}",
        logical.depth(),
        qcircuit::draw::draw(&logical)
    );

    // Compile for the linearly coupled 4-qubit device of Figure 1(d).
    let device = Topology::linear(4);
    let mut rng = StdRng::seed_from_u64(1);

    // NAIVE baseline: compile the bound program directly.
    let bound_spec = QaoaSpec::from_maxcut(&problem, &params, true);
    let naive = compile(
        &bound_spec,
        &device,
        None,
        &CompileOptions::naive(),
        &mut rng,
    );
    println!("--- NAIVE (random mapping + random order) ---");
    println!(
        "depth {}  gates {}  CNOTs {}  SWAPs {}  compile {:?}",
        naive.depth(),
        naive.gate_count(),
        naive.cx_count(),
        naive.swap_count(),
        naive.elapsed()
    );
    assert!(qroute::satisfies_coupling(naive.physical(), &device));
    println!("{}", qcircuit::draw::draw(naive.physical()));

    // IC (+QAIM), compile-once/rebind-many style: the compile flow never
    // looks at the angles, so the parametric template is compiled once
    // and `(γ, β)` values are substituted per use — the hybrid optimizer
    // loop rebinds this artifact every iteration instead of recompiling.
    let template_spec = QaoaSpec::from_maxcut_parametric(&problem, 1, true);
    let artifact = compile_artifact(
        &template_spec,
        &device,
        None,
        &CompileOptions::ic(),
        &mut rng,
    );
    let compiled = artifact.bind(&params.to_values())?;
    println!("--- IC (+QAIM), bound from the compiled artifact ---");
    println!(
        "depth {}  gates {}  CNOTs {}  SWAPs {}  compile {:?}",
        compiled.depth(),
        compiled.gate_count(),
        compiled.cx_count(),
        compiled.swap_count(),
        compiled.elapsed()
    );
    assert!(qroute::satisfies_coupling(compiled.physical(), &device));
    println!("{}", qcircuit::draw::draw(compiled.physical()));

    // Rebinding at different angles is a per-gate substitution, not a
    // compile: structure, layouts and metrics are unchanged.
    let probe = artifact.bind(&qcircuit::ParamValues::new(vec![0.5, 0.2]))?;
    assert_eq!(probe.depth(), compiled.depth());
    assert_eq!(probe.swap_count(), compiled.swap_count());
    println!(
        "(rebinding the artifact at fresh angles keeps depth {} and {} SWAPs)\n",
        probe.depth(),
        probe.swap_count()
    );

    // Where did the depth and SWAP cost come from? The explain report
    // breaks the IC compile down pass by pass and layer by layer; for a
    // fixed seed it is byte-identical across runs — and across rebinds,
    // since binding carries it over verbatim.
    let explain = compiled.explain();
    println!("--- explain (IC run) ---\n{}", explain.render_text());
    if let Some(path) = explain_path {
        explain.save_json(&path)?;
        println!("[wrote explain report {}]", path.display());
    }

    // And what did it cost? Drain the recorder and show the span stats.
    let manifest = qtrace::take("quickstart");
    println!("--- qtrace spans ---");
    for (span_path, stat) in &manifest.spans {
        println!(
            "{span_path}: {}x total {}ns p50 {}ns p99 {}ns",
            stat.count, stat.total_ns, stat.p50_ns, stat.p99_ns
        );
    }
    println!(
        "({} timeline events captured; use --trace on the fig drivers to export Perfetto traces)",
        manifest.events.len()
    );
    Ok(())
}
