//! End-to-end integration: problem graph → QAOA parameters → compilation
//! with every strategy → verification → noisy execution → ARG.

use qaoa::{
    approximation_ratio_from_counts, approximation_ratio_gap, qaoa_circuit, MaxCut, QaoaParams,
};
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::{Calibration, Topology};
use qroute::{routed_equivalent, satisfies_coupling};
use qsim::{Counts, NoiseModel, Sampler, StateVector, TrajectorySimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_strategies() -> [(&'static str, CompileOptions); 5] {
    [
        ("naive", CompileOptions::naive()),
        ("qaim", CompileOptions::qaim_only()),
        ("ip", CompileOptions::ip()),
        ("ic", CompileOptions::ic()),
        ("vic", CompileOptions::vic()),
    ]
}

/// Every strategy produces a coupling-compliant circuit that is
/// *functionally equivalent* to the logical QAOA circuit (verified by
/// statevector simulation through the layout permutation).
#[test]
fn compiled_circuits_are_equivalent_to_logical() {
    let mut rng = StdRng::seed_from_u64(11);
    let graph = qgraph::generators::connected_erdos_renyi(6, 0.5, 1000, &mut rng).unwrap();
    let problem = MaxCut::new(graph);
    let params = QaoaParams::p1(0.63, 0.29);
    let spec = QaoaSpec::from_maxcut(&problem, &params, false);
    let logical = qaoa_circuit(&problem, &params, false);
    // A 10-qubit device keeps the equivalence check cheap.
    let topo = Topology::ring(10);
    let cal = Calibration::random_normal(&topo, 1e-2, 5e-3, &mut rng);

    for (name, options) in all_strategies() {
        let compiled = compile(&spec, &topo, Some(&cal), &options, &mut rng);
        assert!(
            satisfies_coupling(compiled.physical(), &topo),
            "{name} violates coupling"
        );
        assert!(
            routed_equivalent(
                &logical,
                compiled.physical(),
                compiled.initial_layout(),
                compiled.final_layout()
            ),
            "{name} compiled circuit is not equivalent"
        );
    }
}

/// The compiled circuit sampled under heavy trajectory noise has a worse
/// approximation ratio than the noiseless circuit — and the gap (ARG) is
/// positive and larger for a strategy producing bigger circuits.
#[test]
fn arg_orders_strategies_sensibly() {
    let mut rng = StdRng::seed_from_u64(23);
    let graph = qgraph::generators::connected_erdos_renyi(10, 0.5, 1000, &mut rng).unwrap();
    let problem = MaxCut::new(graph);
    let (params, _) = qaoa::optimize::grid_then_nelder_mead(&problem, 1, 16);
    let spec = QaoaSpec::from_maxcut(&problem, &params, true);
    let (topo, cal) = Calibration::melbourne_2020_04_08();

    let shots = 4096;
    let ideal = StateVector::from_circuit(&qaoa_circuit(&problem, &params, false));
    let r0 = approximation_ratio_from_counts(
        &problem,
        &Sampler::new(&ideal).sample_counts(shots, &mut rng),
    );
    assert!(
        r0.value() > 0.6,
        "p=1 QAOA should beat random guessing: {r0}"
    );

    let sim = TrajectorySimulator::new(NoiseModel::new(cal.clone()));
    let mut arg_of = |options: &CompileOptions| -> f64 {
        let compiled = compile(&spec, &topo, Some(&cal), options, &mut rng);
        let physical_counts = sim.sample(compiled.physical(), shots, 64, &mut rng);
        let mut logical_counts = Counts::new();
        for (phys, k) in physical_counts {
            let mut state = 0usize;
            for l in 0..problem.num_vars() {
                if phys >> compiled.final_layout().phys(l) & 1 == 1 {
                    state |= 1 << l;
                }
            }
            *logical_counts.entry(state).or_insert(0) += k;
        }
        let rh = approximation_ratio_from_counts(&problem, &logical_counts);
        approximation_ratio_gap(r0, rh)
    };

    let arg_naive = arg_of(&CompileOptions::naive());
    let arg_ic = arg_of(&CompileOptions::ic());
    assert!(arg_naive > 0.0, "noise must open a gap: {arg_naive}");
    assert!(arg_ic > 0.0, "noise must open a gap: {arg_ic}");
    assert!(
        arg_ic < arg_naive + 3.0,
        "IC ARG {arg_ic} should not be substantially worse than NAIVE {arg_naive}"
    );
}

/// Readout through the final layout keeps cut statistics intact: sampling
/// the *routed* circuit noiselessly gives the same approximation ratio as
/// the logical circuit.
#[test]
fn routed_sampling_matches_logical_distribution() {
    let mut rng = StdRng::seed_from_u64(5);
    let graph = qgraph::generators::connected_random_regular(8, 3, 1000, &mut rng).unwrap();
    let problem = MaxCut::new(graph);
    let params = QaoaParams::p1(0.5, 0.3);
    let spec = QaoaSpec::from_maxcut(&problem, &params, true);
    let topo = Topology::ring(10);
    let compiled = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);

    let logical_state = StateVector::from_circuit(&qaoa_circuit(&problem, &params, false));
    let exact = logical_state.expectation_diagonal(|bits| problem.cut_value(bits) as f64);

    let routed_state = StateVector::from_circuit(compiled.physical());
    let routed_expectation = routed_state.expectation_diagonal(|phys| {
        let mut state = 0usize;
        for l in 0..problem.num_vars() {
            if phys >> compiled.final_layout().phys(l) & 1 == 1 {
                state |= 1 << l;
            }
        }
        problem.cut_value(state) as f64
    });
    assert!(
        (exact - routed_expectation).abs() < 1e-9,
        "logical {exact} vs routed {routed_expectation}"
    );
}

/// Strategy quality ordering on a batch of instances (the Figure 11(a)
/// trend): mean depth NAIVE >= QAIM > IP > IC, and IC gates < IP gates.
#[test]
fn strategy_quality_ordering() {
    let topo = Topology::ibmq_20_tokyo();
    let mut rng = StdRng::seed_from_u64(31);
    let mut depth = [0usize; 5];
    let mut gates = [0usize; 5];
    let instances = 6;
    for i in 0..instances {
        let mut g_rng = StdRng::seed_from_u64(600 + i);
        let g = qgraph::generators::connected_erdos_renyi(18, 0.4, 1000, &mut g_rng).unwrap();
        let problem = MaxCut::without_optimum(g);
        let spec = QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.9, 0.35), true);
        let cal = Calibration::random_normal(&topo, 1e-2, 5e-3, &mut rng);
        for (si, (_, options)) in all_strategies().iter().enumerate() {
            let c = compile(&spec, &topo, Some(&cal), options, &mut rng);
            depth[si] += c.depth();
            gates[si] += c.gate_count();
        }
    }
    let [d_naive, d_qaim, d_ip, d_ic, d_vic] = depth;
    let [_, g_qaim, g_ip, g_ic, _] = gates;
    assert!(d_qaim <= d_naive, "QAIM depth {d_qaim} vs NAIVE {d_naive}");
    assert!(d_ip < d_qaim, "IP depth {d_ip} vs QAIM {d_qaim}");
    assert!(d_ic < d_ip, "IC depth {d_ic} vs IP {d_ip}");
    // VIC optimises reliability, not depth, so it may pay a small depth
    // premium over IC; the margin is statistical (instance- and
    // RNG-stream-dependent), hence the slack.
    assert!(
        (d_vic as f64) < 1.25 * d_ic as f64,
        "VIC depth {d_vic} near IC {d_ic}"
    );
    assert!(g_ic < g_ip, "IC gates {g_ic} vs IP {g_ip}");
    assert!(g_ic < g_qaim, "IC gates {g_ic} vs QAIM {g_qaim}");
}
