//! Small-scale replicas of the paper's evaluation shapes (DESIGN.md's
//! experiment index). Each test is a miniature of one figure and asserts
//! the qualitative claim — who wins, and roughly where.

use qaoa::{MaxCut, QaoaParams};
use qcompile::{compile, Compilation, CompileOptions, InitialMapping, QaoaSpec};
use qhw::{Calibration, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn er_spec(n: usize, p: f64, seed: u64) -> QaoaSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = qgraph::generators::connected_erdos_renyi(n, p, 10_000, &mut rng).unwrap();
    QaoaSpec::from_maxcut(
        &MaxCut::without_optimum(g),
        &QaoaParams::p1(0.9, 0.35),
        true,
    )
}

fn regular_spec(n: usize, k: usize, seed: u64) -> QaoaSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = qgraph::generators::connected_random_regular(n, k, 10_000, &mut rng).unwrap();
    QaoaSpec::from_maxcut(
        &MaxCut::without_optimum(g),
        &QaoaParams::p1(0.9, 0.35),
        true,
    )
}

/// Figure 7 shape: on sparse 20-node graphs QAIM beats NAIVE clearly on
/// depth and gate count; on dense graphs the gap shrinks.
#[test]
fn fig7_qaim_wins_on_sparse_graphs() {
    let topo = Topology::ibmq_20_tokyo();
    let mut rng = StdRng::seed_from_u64(70);
    let instances = 8;
    let mut ratio_for = |p_edge: f64| -> (f64, f64) {
        let (mut dn, mut dq, mut gn, mut gq) = (0usize, 0usize, 0usize, 0usize);
        for i in 0..instances {
            let spec = er_spec(20, p_edge, 7_100 + i);
            let naive = compile(&spec, &topo, None, &CompileOptions::naive(), &mut rng);
            let qaim = compile(&spec, &topo, None, &CompileOptions::qaim_only(), &mut rng);
            dn += naive.depth();
            dq += qaim.depth();
            gn += naive.gate_count();
            gq += qaim.gate_count();
        }
        (dq as f64 / dn as f64, gq as f64 / gn as f64)
    };
    let (depth_sparse, gates_sparse) = ratio_for(0.12);
    let (depth_dense, gates_dense) = ratio_for(0.6);
    assert!(depth_sparse < 0.95, "sparse depth ratio {depth_sparse}");
    assert!(gates_sparse < 0.95, "sparse gate ratio {gates_sparse}");
    // Dense graphs: everything converges (the paper sees ~1.0).
    assert!(depth_dense > 0.85, "dense depth ratio {depth_dense}");
    assert!(gates_dense > 0.85, "dense gate ratio {gates_dense}");
    assert!(
        depth_sparse < depth_dense + 0.05,
        "QAIM's edge should be largest on sparse graphs: {depth_sparse} vs {depth_dense}"
    );
}

/// Figure 8 shape: QAIM's advantage over NAIVE is present at small problem
/// sizes (12 nodes on the 20-qubit device).
#[test]
fn fig8_small_problems_benefit_from_mapping() {
    let topo = Topology::ibmq_20_tokyo();
    let mut rng = StdRng::seed_from_u64(80);
    let (mut dn, mut dq) = (0usize, 0usize);
    for i in 0..8 {
        let spec = regular_spec(12, 3, 8_100 + i);
        dn += compile(&spec, &topo, None, &CompileOptions::naive(), &mut rng).depth();
        dq += compile(&spec, &topo, None, &CompileOptions::qaim_only(), &mut rng).depth();
    }
    let ratio = dq as f64 / dn as f64;
    assert!(ratio < 0.92, "12-node depth ratio {ratio} (paper: 0.78)");
}

/// Figure 9 shape: IP and IC both cut depth well below QAIM-only, IC cuts
/// gate count below IP, and the effect grows with graph density.
#[test]
fn fig9_parallelization_and_incremental_wins() {
    let topo = Topology::ibmq_20_tokyo();
    let mut rng = StdRng::seed_from_u64(90);
    let (mut dq, mut dip, mut dic) = (0usize, 0usize, 0usize);
    let (mut gq, mut gip, mut gic) = (0usize, 0usize, 0usize);
    for i in 0..8 {
        let spec = regular_spec(20, 6, 9_100 + i);
        let q = compile(&spec, &topo, None, &CompileOptions::qaim_only(), &mut rng);
        let ip = compile(&spec, &topo, None, &CompileOptions::ip(), &mut rng);
        let ic = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);
        dq += q.depth();
        dip += ip.depth();
        dic += ic.depth();
        gq += q.gate_count();
        gip += ip.gate_count();
        gic += ic.gate_count();
    }
    assert!(
        (dip as f64) < 0.9 * dq as f64,
        "IP depth {dip} vs QAIM {dq}"
    );
    assert!(
        (dic as f64) < 0.8 * dq as f64,
        "IC depth {dic} vs QAIM {dq}"
    );
    assert!(dic < dip, "IC depth {dic} vs IP {dip}");
    assert!(
        (gic as f64) < 0.95 * gip as f64,
        "IC gates {gic} vs IP {gip}"
    );
    assert!(
        (gip as f64) < 1.05 * gq as f64,
        "IP gates {gip} near QAIM {gq}"
    );
}

/// Figure 10 shape: VIC's mean success probability beats IC's on melbourne
/// with the real calibration.
#[test]
fn fig10_vic_success_probability() {
    let (topo, cal) = Calibration::melbourne_2020_04_08();
    let mut rng = StdRng::seed_from_u64(100);
    // Per-instance VIC-vs-IC outcomes are noisy (the advantage is a mean
    // effect, Figure 10), so a healthy instance count keeps this stable.
    let (mut sp_ic, mut sp_vic) = (0.0f64, 0.0f64);
    for i in 0..48 {
        let spec = er_spec(12, 0.5, 10_200 + i);
        sp_ic += compile(&spec, &topo, Some(&cal), &CompileOptions::ic(), &mut rng)
            .success_probability(&cal);
        sp_vic += compile(&spec, &topo, Some(&cal), &CompileOptions::vic(), &mut rng)
            .success_probability(&cal);
    }
    assert!(
        sp_vic > sp_ic,
        "VIC mean SP {sp_vic} should beat IC {sp_ic}"
    );
}

/// Figure 12 shape: with IC on the 6x6 grid, a tiny packing limit hurts
/// depth, and gate count grows monotonically-ish with the limit.
#[test]
fn fig12_packing_density_tradeoff() {
    let topo = Topology::grid(6, 6);
    let mut rng = StdRng::seed_from_u64(120);
    let spec = er_spec(36, 0.5, 12_300);
    let compile_with = |limit: usize, rng: &mut StdRng| {
        compile(
            &spec,
            &topo,
            None,
            &CompileOptions::ic().with_packing_limit(limit),
            rng,
        )
    };
    let tight = compile_with(1, &mut rng);
    let mid = compile_with(9, &mut rng);
    assert!(
        mid.depth() < tight.depth(),
        "packing 9 depth {} should beat packing 1 depth {}",
        mid.depth(),
        tight.depth()
    );
    assert!(
        tight.gate_count() <= mid.gate_count() + mid.gate_count() / 10,
        "packing 1 gates {} should not exceed packing 9 gates {} by much",
        tight.gate_count(),
        mid.gate_count()
    );
}

/// GreedyV sits between NAIVE and QAIM on sparse-graph gate count (the
/// Figure 7 baseline relationship).
#[test]
fn greedyv_between_naive_and_qaim() {
    let topo = Topology::ibmq_20_tokyo();
    let greedy = CompileOptions::new(InitialMapping::GreedyV, Compilation::RandomOrder);
    let mut rng = StdRng::seed_from_u64(130);
    let (mut gn, mut gg, mut gq) = (0usize, 0usize, 0usize);
    for i in 0..10 {
        let spec = er_spec(20, 0.12, 13_100 + i);
        gn += compile(&spec, &topo, None, &CompileOptions::naive(), &mut rng).gate_count();
        gg += compile(&spec, &topo, None, &greedy, &mut rng).gate_count();
        gq += compile(&spec, &topo, None, &CompileOptions::qaim_only(), &mut rng).gate_count();
    }
    assert!(gq < gn, "QAIM {gq} must beat NAIVE {gn}");
    assert!(gq <= gg, "QAIM {gq} must beat GreedyV {gg}");
}

/// §VI comparative setting: 8-node/8-edge graphs on an 8-qubit ring
/// compile quickly and IC beats NAIVE.
#[test]
fn ring8_comparison_workload() {
    let topo = Topology::ring(8);
    let mut rng = StdRng::seed_from_u64(140);
    let (mut dn, mut dic) = (0usize, 0usize);
    for i in 0..10 {
        let mut g_rng = StdRng::seed_from_u64(14_100 + i);
        let g = qgraph::generators::connected_gnm(8, 8, 10_000, &mut g_rng).unwrap();
        let spec = QaoaSpec::from_maxcut(
            &MaxCut::without_optimum(g),
            &QaoaParams::p1(0.9, 0.35),
            true,
        );
        let start = std::time::Instant::now();
        dn += compile(&spec, &topo, None, &CompileOptions::naive(), &mut rng).depth();
        dic += compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng).depth();
        // The temporal planner of [46] needs 70 s for such instances; we
        // must stay far under that (paper: <10 s for 36 qubits).
        assert!(start.elapsed().as_secs_f64() < 1.0);
    }
    assert!(dic < dn, "IC depth {dic} should beat NAIVE {dn}");
}
