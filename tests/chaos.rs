//! Chaos campaign: the compile service invariant under injected faults.
//!
//! For *any* fault the [`qhw::fault`] injector can produce — corrupted
//! calibration feeds, degraded topologies, exhausted budgets, poisoned
//! batch jobs — every compile job must end in exactly one of two states:
//!
//! 1. a **verified** [`qcompile::CompiledCircuit`] (coupling-compliant,
//!    and functionally equivalent to the logical program on devices small
//!    enough to simulate), or
//! 2. a **structured** [`qcompile::CompileError`].
//!
//! Never a panic, never an unverified circuit. The seeded campaign below
//! replays several hundred scenarios; the proptest block fuzzes seed ×
//! fault-class combinations beyond the fixed grid. The CI `chaos` job
//! runs the same invariant via `bench`'s deterministic manifest gate.

use qcompile::{
    compile_batch, try_compile_with_context, BatchJob, CompileError, CompileOptions,
    CompiledCircuit, QaoaSpec, FULL_VERIFY_MAX_QUBITS,
};
use qhw::fault::{FaultInjector, FaultKind};
use qhw::{Calibration, HardwareContext, Topology};
use qroute::{routed_equivalent, satisfies_coupling};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use proptest::prelude::*;

/// The logical reference in spec order (CPHASEs commute, so this is a
/// valid equivalence baseline for every gate ordering).
fn logical_reference(spec: &QaoaSpec) -> qcircuit::Circuit {
    let n = spec.num_qubits();
    let mut c = qcircuit::Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for (level, (ops, beta)) in spec.levels().iter().enumerate() {
        for op in ops {
            c.rzz(op.angle, op.a, op.b);
        }
        for &(q, angle) in spec.field_terms(level) {
            c.rz(angle, q);
        }
        for q in 0..n {
            c.rx(beta.scaled(2.0), q);
        }
    }
    if spec.measure() {
        c.measure_all();
    }
    c
}

/// The invariant: a delivered circuit is verified, full stop.
fn assert_verified(spec: &QaoaSpec, topo: &Topology, compiled: &CompiledCircuit) {
    assert!(
        satisfies_coupling(compiled.physical(), topo),
        "unverified circuit escaped: coupling violation"
    );
    if topo.num_qubits() <= FULL_VERIFY_MAX_QUBITS {
        assert!(
            routed_equivalent(
                &logical_reference(spec),
                compiled.physical(),
                compiled.initial_layout(),
                compiled.final_layout(),
            ),
            "unverified circuit escaped: not equivalent to the logical program"
        );
    }
}

fn spec_for(seed: u64, n: usize) -> QaoaSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = qgraph::generators::connected_erdos_renyi(n, 0.35, 1000, &mut rng).unwrap();
    let problem = qaoa::MaxCut::without_optimum(g);
    QaoaSpec::from_maxcut(&problem, &qaoa::QaoaParams::p1(0.5, 0.3), true)
}

fn strategies() -> [CompileOptions; 3] {
    [
        CompileOptions::vic(),
        CompileOptions::ic(),
        CompileOptions::naive(),
    ]
}

/// Runs one scenario end to end and asserts the invariant; returns
/// whether a circuit was delivered (vs a structured error).
fn run_scenario(
    spec: &QaoaSpec,
    topo: &Topology,
    context: &HardwareContext,
    options: &CompileOptions,
    seed: u64,
) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    match try_compile_with_context(spec, context, options, &mut rng) {
        Ok(compiled) => {
            assert_verified(spec, topo, &compiled);
            true
        }
        // Any structured error is an acceptable outcome; panics and
        // unverified circuits are the only failures.
        Err(_) => false,
    }
}

/// Calibration-corruption campaign: 7 fault classes × 5 seeds × 3
/// strategies × {ladder on, ladder off} = 210 scenarios.
#[test]
fn calibration_corruption_never_panics_or_escapes_unverified() {
    let topo = Topology::ibmq_16_melbourne();
    let base = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
    let mut delivered = 0usize;
    let mut scenarios = 0usize;
    for kind in FaultKind::CALIBRATION {
        for seed in 0..5u64 {
            let bad = FaultInjector::new(seed).corrupt_calibration(&topo, &base, kind);
            let context = HardwareContext::with_calibration(topo.clone(), bad);
            let spec = spec_for(1000 + seed, 10);
            for options in strategies() {
                for resilient in [false, true] {
                    let opts = if resilient {
                        options.with_fallback()
                    } else {
                        options
                    };
                    scenarios += 1;
                    if run_scenario(&spec, &topo, &context, &opts, seed) {
                        delivered += 1;
                    }
                }
            }
        }
    }
    assert_eq!(scenarios, 210);
    // With the ladder enabled every calibration fault is survivable, so
    // well over half the scenarios must deliver circuits (only the
    // ladder-off VIC runs on invalid tables error out).
    assert!(
        delivered >= scenarios / 2,
        "only {delivered}/{scenarios} delivered"
    );
}

/// Topology-degradation campaign: dropped couplings, isolated qubits and
/// split devices either still compile (connected) or fail structurally
/// with `DisconnectedTopology` — never via unreachable-distance panics.
#[test]
fn topology_degradation_never_panics_or_escapes_unverified() {
    let base = Topology::ibmq_16_melbourne();
    let mut disconnected_seen = 0usize;
    for kind in FaultKind::TOPOLOGY {
        for seed in 0..10u64 {
            let topo = FaultInjector::new(seed).degrade_topology(&base, kind);
            let context = HardwareContext::new(topo.clone());
            let spec = spec_for(2000 + seed, 10);
            for options in [CompileOptions::ic(), CompileOptions::naive()] {
                let mut rng = StdRng::seed_from_u64(seed);
                match try_compile_with_context(&spec, &context, &options, &mut rng) {
                    Ok(compiled) => {
                        assert!(context.is_connected());
                        assert_verified(&spec, &topo, &compiled);
                    }
                    Err(CompileError::DisconnectedTopology { components }) => {
                        assert!(!context.is_connected());
                        assert!(components >= 2);
                        disconnected_seen += 1;
                    }
                    Err(other) => {
                        // Structured failure is acceptable; record nothing.
                        let _ = other;
                    }
                }
            }
        }
    }
    // IsolatedQubit and SplitComponent guarantee disconnection, so the
    // structured path must actually have been exercised.
    assert!(disconnected_seen >= 20, "only {disconnected_seen} hit");
}

/// Budget-exhaustion campaign with deterministic triggers: a zero pass
/// budget and a zero swap budget always fire, so these scenarios are
/// reproducible without real timing.
#[test]
fn budget_exhaustion_degrades_or_errors_structurally() {
    let topo = Topology::ibmq_16_melbourne();
    let context = HardwareContext::new(topo.clone());
    for seed in 0..10u64 {
        let spec = spec_for(3000 + seed, 10);
        for base in [CompileOptions::ic(), CompileOptions::ip()] {
            for opts in [
                base.with_pass_budget(Duration::ZERO),
                base.with_swap_budget(0),
            ] {
                // Strict: a structured BudgetExceeded (or, for swap
                // budgets on lucky seeds, a 0-swap success).
                let mut rng = StdRng::seed_from_u64(seed);
                match try_compile_with_context(&spec, &context, &opts, &mut rng) {
                    Ok(c) => assert_verified(&spec, &topo, &c),
                    Err(e) => assert!(
                        matches!(e, CompileError::BudgetExceeded { .. }),
                        "unexpected {e:?}"
                    ),
                }
                // Resilient: the final rung is budget-exempt, so a
                // verified circuit always comes back.
                let mut rng = StdRng::seed_from_u64(seed);
                let compiled =
                    try_compile_with_context(&spec, &context, &opts.with_fallback(), &mut rng)
                        .unwrap();
                assert_verified(&spec, &topo, &compiled);
            }
        }
    }
}

/// Batch campaign: a batch seeded with corrupt-calibration jobs, poisoned
/// (panicking) jobs and healthy jobs returns one structured result per
/// job, in order, on both the serial and threaded paths.
#[test]
fn poisoned_batches_return_structured_results_per_job() {
    let topo = Topology::ibmq_16_melbourne();
    let base = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
    let bad = FaultInjector::new(4).corrupt_calibration(&topo, &base, FaultKind::NanRate);
    let context = HardwareContext::with_calibration(topo.clone(), bad);
    // A self-CPHASE via the public-field literal panics deep inside
    // compilation — the batch boundary must contain it.
    let self_loop = qcompile::CphaseOp {
        a: 1,
        b: 1,
        angle: (0.2).into(),
    };
    let poison = QaoaSpec::new(6, vec![(vec![self_loop], 0.3)], true);
    let mut jobs = Vec::new();
    for seed in 0..8u64 {
        jobs.push(BatchJob::new(
            spec_for(4000 + seed, 8),
            CompileOptions::vic(),
            seed,
        ));
        jobs.push(BatchJob::new(
            poison.clone(),
            CompileOptions::qaim_only(),
            100 + seed,
        ));
        jobs.push(BatchJob::new(
            spec_for(4100 + seed, 8),
            CompileOptions::vic().with_fallback(),
            200 + seed,
        ));
    }
    for workers in [1, 4] {
        let results = compile_batch(&context, &jobs, workers);
        assert_eq!(results.len(), jobs.len());
        for (i, result) in results.iter().enumerate() {
            match i % 3 {
                // VIC on a quarantined table without the ladder.
                0 => assert!(matches!(result, Err(CompileError::UnusableCalibration(_)))),
                // The poisoned job is caught, not fatal.
                1 => assert!(matches!(result, Err(CompileError::Internal(_)))),
                // The resilient VIC job delivers a verified circuit.
                _ => {
                    let compiled = result.as_ref().unwrap();
                    assert!(compiled.trace().degraded());
                    assert_verified(&jobs[i].spec, &topo, compiled);
                }
            }
        }
    }
}

/// Fallbacks taken during the campaign surface as qtrace counters — the
/// telemetry surface the CI `chaos` gate regresses against.
#[test]
fn fallbacks_surface_in_the_qtrace_manifest() {
    let topo = Topology::ibmq_16_melbourne();
    let base = Calibration::uniform(&topo, 0.02, 0.001, 0.02);
    let bad = FaultInjector::new(1).corrupt_calibration(&topo, &base, FaultKind::InfiniteRate);
    let context = HardwareContext::with_calibration(topo.clone(), bad);
    let spec = spec_for(5000, 10);
    let q = qtrace::global();
    q.enable();
    let mut rng = StdRng::seed_from_u64(1);
    let compiled = try_compile_with_context(
        &spec,
        &context,
        &CompileOptions::vic().with_fallback(),
        &mut rng,
    )
    .unwrap();
    q.disable();
    let manifest = q.take_manifest("chaos-telemetry");
    assert!(compiled.trace().degraded());
    // Process-global recorder: lower bounds only.
    assert!(
        manifest
            .counters
            .get("qcompile/fallbacks")
            .copied()
            .unwrap_or(0)
            >= 1
    );
    assert!(manifest
        .counters
        .contains_key("qcompile/fallbacks/unusable-calibration"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fuzzed single-fault scenarios beyond the fixed grid: any seed, any
    /// fault class, any strategy — verified circuit or structured error.
    #[test]
    fn any_injected_fault_yields_verified_or_structured(
        seed in 0u64..10_000,
        kind_ix in 0usize..10,
        strategy_ix in 0usize..3,
        resilient_ix in 0usize..2,
    ) {
        let all_kinds = [
            FaultKind::NanRate,
            FaultKind::InfiniteRate,
            FaultKind::NegativeRate,
            FaultKind::OversizedRate,
            FaultKind::DeadLink,
            FaultKind::MissingEntry,
            FaultKind::HeavyDrift,
            FaultKind::DroppedCoupling,
            FaultKind::IsolatedQubit,
            FaultKind::SplitComponent,
        ];
        let kind = all_kinds[kind_ix];
        let base_topo = Topology::ibmq_16_melbourne();
        let base_cal = Calibration::uniform(&base_topo, 0.02, 0.001, 0.02);
        let mut inj = FaultInjector::new(seed);
        let (topo, cal) = if FaultKind::CALIBRATION.contains(&kind) {
            let cal = inj.corrupt_calibration(&base_topo, &base_cal, kind);
            (base_topo.clone(), Some(cal))
        } else {
            (inj.degrade_topology(&base_topo, kind), None)
        };
        let context = HardwareContext::from_parts(topo.clone(), cal);
        let spec = spec_for(seed, 9);
        let mut options = strategies()[strategy_ix];
        if resilient_ix == 1 {
            options = options.with_fallback();
        }
        // The invariant is the absence of panics plus verified output;
        // run_scenario asserts it internally.
        let _ = run_scenario(&spec, &topo, &context, &options, seed);
    }
}
