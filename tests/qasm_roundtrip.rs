//! Cross-crate round trip: compile → lower to the IBM basis → export
//! OpenQASM → parse back → identical circuit and metrics.

use qaoa::{MaxCut, QaoaParams};
use qcompile::{compile, CompileOptions, QaoaSpec};
use qhw::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn compiled_circuits_survive_qasm_round_trip() {
    let mut rng = StdRng::seed_from_u64(4);
    for strategy in [
        CompileOptions::naive(),
        CompileOptions::ip(),
        CompileOptions::ic(),
    ] {
        let mut g_rng = StdRng::seed_from_u64(17);
        let g = qgraph::generators::connected_erdos_renyi(10, 0.4, 1000, &mut g_rng).unwrap();
        let problem = MaxCut::without_optimum(g);
        let spec = QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.7, 0.3), true);
        let topo = Topology::ibmq_16_melbourne();
        let compiled = compile(&spec, &topo, None, &strategy, &mut rng);

        let qasm = qcircuit::qasm::to_qasm(compiled.basis_circuit()).unwrap();
        let parsed = qcircuit::qasm::parse(&qasm).expect("exported QASM re-parses");
        assert_eq!(&parsed, compiled.basis_circuit(), "{strategy:?}");
        assert_eq!(parsed.depth(), compiled.depth());
        assert_eq!(parsed.gate_count(), compiled.gate_count());
        assert_eq!(parsed.count_gate("cx"), compiled.cx_count());
    }
}

#[test]
fn qasm_round_trip_preserves_semantics() {
    // Parse-back circuits simulate to the same state.
    let mut rng = StdRng::seed_from_u64(5);
    let g = qgraph::generators::connected_random_regular(6, 3, 1000, &mut rng).unwrap();
    let problem = MaxCut::without_optimum(g);
    let spec = QaoaSpec::from_maxcut(&problem, &QaoaParams::p1(0.4, 0.2), false);
    let topo = Topology::ring(8);
    let compiled = compile(&spec, &topo, None, &CompileOptions::ic(), &mut rng);

    let parsed =
        qcircuit::qasm::parse(&qcircuit::qasm::to_qasm(compiled.basis_circuit()).unwrap()).unwrap();
    let a = qsim::StateVector::from_circuit(compiled.basis_circuit());
    let b = qsim::StateVector::from_circuit(&parsed);
    assert!(a.fidelity(&b) > 1.0 - 1e-9);
}
